"""Search-cost accounting.

The paper's motivation for the Eq. 2-3 model is that "directly measuring
the runtime performance on target hardware [...] is prohibitively
expensive since the search space of NAS is immensely large". The ledger
makes that claim checkable: it counts on-device measurement sessions
(and individual inference runs) separately from predictor queries, so a
pipeline can *prove* its search loop ran measurement-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MeasurementLedger:
    """Counters for the three cost classes of a hardware-aware search.

    Attributes
    ----------
    measurement_sessions:
        Architectures measured end-to-end on the device (each costs a
        deployment + warmup + repeats in the real world).
    measurement_runs:
        Individual on-device inference executions (warmup + repeats).
    lut_cells:
        Operator micro-benchmark cells profiled while building LUTs.
    predictor_queries:
        Latency/energy predictions served from the LUT — the cheap
        operation the search loop is allowed to spam.
    """

    measurement_sessions: int = 0
    measurement_runs: int = 0
    lut_cells: int = 0
    predictor_queries: int = 0
    _frozen: bool = field(default=False, repr=False)

    # -- recording --------------------------------------------------------------

    def record_measurement(self, runs: int) -> None:
        if self._frozen:
            raise RuntimeError(
                "ledger is frozen: an on-device measurement happened "
                "inside a measurement-free section"
            )
        if runs < 1:
            raise ValueError("a measurement session has at least one run")
        self.measurement_sessions += 1
        self.measurement_runs += runs

    def record_lut_cells(self, cells: int) -> None:
        if cells < 0:
            raise ValueError("cell count must be non-negative")
        self.lut_cells += cells

    def record_prediction(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("prediction count must be non-negative")
        self.predictor_queries += count

    # -- measurement-free sections ----------------------------------------------

    def freeze_measurements(self) -> None:
        """Make any further on-device measurement an error.

        The HSCoNAS pipeline freezes the ledger for the shrinking+EA
        phase: Eq. 2-3 exists precisely so that phase needs no device.
        """
        self._frozen = True

    def thaw_measurements(self) -> None:
        self._frozen = False

    # -- checkpointing ----------------------------------------------------------

    _COUNTERS = (
        "measurement_sessions",
        "measurement_runs",
        "lut_cells",
        "predictor_queries",
    )

    def to_dict(self) -> dict:
        """Counters only — frozen-ness is a phase property, not state."""
        return {name: getattr(self, name) for name in self._COUNTERS}

    @classmethod
    def from_dict(cls, payload: dict) -> "MeasurementLedger":
        return cls(**{k: int(payload.get(k, 0)) for k in cls._COUNTERS})

    def restore(self, payload: dict) -> None:
        """Overwrite this ledger's counters in place.

        Frozen-ness is untouched: whether measurements are currently
        allowed is decided by the phase being resumed, not by the
        checkpoint.
        """
        for name in self._COUNTERS:
            setattr(self, name, int(payload.get(name, 0)))

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> str:
        return (
            f"on-device sessions: {self.measurement_sessions} "
            f"({self.measurement_runs} runs), "
            f"LUT cells: {self.lut_cells}, "
            f"predictor queries: {self.predictor_queries}"
        )
