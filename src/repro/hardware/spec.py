"""Device specifications for the simulated hardware targets.

The constants below describe devices *analogous to* the paper's testbed.
Absolute throughputs were hand-tuned (and can be re-fit with
:mod:`repro.hardware.calibration`) so that the published Table-I anchor
models land near their published latencies; the *relative* behaviour —
launch-overhead-dominated GPU, low-utilization batch-1 CPU, bandwidth-
starved edge SoC — is what drives every qualitative result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of one simulated device.

    Attributes
    ----------
    name, key:
        Display name and short identifier (``"gpu"``/``"cpu"``/``"edge"``).
    batch_size:
        Inference batch size used for latency evaluation (paper Sec.
        III-A: 32 for GPU, 1 for CPU, 16 for edge).
    peak_macs_per_s:
        Peak multiply-accumulate throughput.
    bandwidth_bytes_per_s:
        Peak DRAM bandwidth.
    launch_overhead_s:
        Fixed cost charged per primitive kernel (driver/dispatch).
    layer_overhead_s:
        Communication/synchronization cost charged per layer boundary —
        the systematic error source the paper's bias ``B`` compensates.
    base_overhead_s:
        Fixed end-to-end cost (framework entry, output copy).
    kind_efficiency:
        Fraction of peak MACs achievable per primitive kind; depthwise
        convolutions utilize wide SIMD/tensor hardware poorly.
    bandwidth_efficiency:
        Fraction of peak DRAM bandwidth achievable per primitive kind.
        Pure data-movement kernels (channel shuffle, concat, residual
        adds) are strided and cache-hostile, especially on a batch-1
        CPU — this is what makes ShuffleNetV2 and DARTS relatively slow
        on the paper's CPU despite moderate FLOPs.
    saturation_macs:
        Work (MACs x batch) at which a kernel reaches half of its
        achievable throughput; models launch-to-steady-state ramp and
        under-utilization of small kernels.
    kind_saturation:
        Optional per-kind override of ``saturation_macs``. Depthwise
        kernels ramp to their (low) steady-state throughput quickly, so
        they get a smaller saturation point than dense convolutions.
    noise_sigma:
        Std-dev of multiplicative log-normal measurement noise.
    time_scale:
        Global multiplier applied to the final latency (used by anchor
        calibration; 1.0 by default).
    pj_per_mac:
        Dynamic energy per multiply-accumulate (picojoules). Depthwise
        kernels pay the same per-MAC cost; their inefficiency shows up
        through *time* (static power), not per-op switching energy.
    pj_per_byte:
        Dynamic energy per byte of DRAM traffic (picojoules).
    static_watts:
        Idle/leakage power drawn for the duration of the inference —
        the term that couples energy to the latency model and makes
        slow-but-small networks energy-expensive on big chips.
    """

    name: str
    key: str
    batch_size: int
    peak_macs_per_s: float
    bandwidth_bytes_per_s: float
    launch_overhead_s: float
    layer_overhead_s: float
    base_overhead_s: float
    kind_efficiency: Dict[str, float] = field(
        default_factory=lambda: {"conv": 0.45, "dwconv": 0.08}
    )
    bandwidth_efficiency: Dict[str, float] = field(
        default_factory=lambda: {"conv": 1.0, "dwconv": 0.8, "memory": 0.3}
    )
    saturation_macs: float = 1e7
    kind_saturation: Dict[str, float] = field(default_factory=dict)
    noise_sigma: float = 0.02
    time_scale: float = 1.0
    pj_per_mac: float = 10.0
    pj_per_byte: float = 50.0
    static_watts: float = 5.0

    def saturation_for(self, kind: str) -> float:
        """Saturation work for a primitive kind."""
        return self.kind_saturation.get(kind, self.saturation_macs)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.peak_macs_per_s <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("throughputs must be positive")
        if min(self.launch_overhead_s, self.layer_overhead_s, self.base_overhead_s) < 0:
            raise ValueError("overheads must be non-negative")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.pj_per_mac < 0 or self.pj_per_byte < 0 or self.static_watts < 0:
            raise ValueError("energy parameters must be non-negative")
        for kind in ("conv", "dwconv"):
            if kind not in self.kind_efficiency:
                raise ValueError(f"kind_efficiency missing {kind!r}")

    def with_time_scale(self, scale: float) -> "DeviceSpec":
        """Copy with a different global time scale (anchor calibration)."""
        return replace(self, time_scale=scale)


def gpu_spec() -> DeviceSpec:
    """Quadro GV100 analogue: huge compute, high launch overheads, batch 32."""
    return DeviceSpec(
        name="Nvidia Quadro GV100 (simulated)",
        key="gpu",
        batch_size=32,
        peak_macs_per_s=7.4e12,
        bandwidth_bytes_per_s=870e9,
        launch_overhead_s=9e-6,
        layer_overhead_s=2.4e-5,
        base_overhead_s=3.0e-4,
        kind_efficiency={"conv": 0.40, "dwconv": 0.08},
        bandwidth_efficiency={"conv": 1.0, "dwconv": 0.85, "memory": 0.55},
        saturation_macs=2.0e7,
        kind_saturation={"dwconv": 1.0e6},
        noise_sigma=0.055,
        pj_per_mac=25.0,
        pj_per_byte=60.0,
        static_watts=35.0,
    )


def cpu_spec() -> DeviceSpec:
    """Xeon Gold 6136 analogue at batch 1: low utilization, tiny overheads."""
    return DeviceSpec(
        name="Intel Xeon Gold 6136 (simulated)",
        key="cpu",
        batch_size=1,
        peak_macs_per_s=5.8e11,
        bandwidth_bytes_per_s=1.19e11,
        launch_overhead_s=1.5e-4,
        layer_overhead_s=6.0e-5,
        base_overhead_s=2.0e-4,
        kind_efficiency={"conv": 0.055, "dwconv": 0.020},
        bandwidth_efficiency={"conv": 1.0, "dwconv": 0.60, "memory": 0.035},
        saturation_macs=3.0e5,
        noise_sigma=0.004,
        pj_per_mac=60.0,
        pj_per_byte=200.0,
        static_watts=12.0,
    )


def edge_spec() -> DeviceSpec:
    """Jetson Xavier (power mode 6) analogue at batch 16."""
    return DeviceSpec(
        name="Nvidia Jetson Xavier, power mode 6 (simulated)",
        key="edge",
        batch_size=16,
        peak_macs_per_s=6.9e11,
        bandwidth_bytes_per_s=1.37e11,
        launch_overhead_s=1.8e-5,
        layer_overhead_s=5.2e-5,
        base_overhead_s=6.0e-4,
        kind_efficiency={"conv": 0.35, "dwconv": 0.20},
        bandwidth_efficiency={"conv": 1.0, "dwconv": 0.75, "memory": 0.30},
        saturation_macs=2.0e6,
        noise_sigma=0.040,
        pj_per_mac=8.0,
        pj_per_byte=70.0,
        static_watts=1.8,
    )


_SPECS = {"gpu": gpu_spec, "cpu": cpu_spec, "edge": edge_spec}


def spec_by_key(key: str) -> DeviceSpec:
    """Look up a default device spec by short key."""
    try:
        return _SPECS[key]()
    except KeyError:
        raise KeyError(
            f"unknown device {key!r}; expected one of {sorted(_SPECS)}"
        ) from None
