"""Error and correlation metrics for predictor evaluation."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats


def _pair(a: Sequence[float], b: Sequence[float]) -> tuple:
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("inputs must be 1-D sequences of equal length")
    if x.size == 0:
        raise ValueError("inputs must be non-empty")
    return x, y


def rmse(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """Root-mean-squared error (the paper's Fig. 3 metric)."""
    x, y = _pair(predicted, measured)
    return float(np.sqrt(np.mean((x - y) ** 2)))


def mae(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """Mean absolute error."""
    x, y = _pair(predicted, measured)
    return float(np.mean(np.abs(x - y)))


def mean_bias(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """Mean signed error (predicted - measured); near zero after B."""
    x, y = _pair(predicted, measured)
    return float(np.mean(x - y))


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson linear correlation coefficient."""
    x, y = _pair(a, b)
    if np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    return float(stats.pearsonr(x, y).statistic)


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation coefficient."""
    x, y = _pair(a, b)
    if np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    return float(stats.spearmanr(x, y).statistic)
