"""Energy modeling — the paper's announced extension.

The conclusion of the paper states: "In future, we plan to extend
HSCoNAS, which will incorporate different hardware constraints like
power consumption." This module implements that extension on top of the
same device substrate:

* :meth:`EnergyModel.network_energy_mj` — per-inference energy of a
  network on a device: dynamic switching energy (per MAC + per byte of
  DRAM traffic) plus static power integrated over the latency-model
  execution time. The static term couples energy to the latency model,
  so the energy landscape is *not* simply proportional to FLOPs.
* :class:`EnergyPredictor` — a per-operator energy lookup table with a
  calibrated bias, the exact analogue of the Eq. 2-3 latency model, so
  the search never needs on-device power measurement either.

Use :class:`repro.core.multi_constraint.MultiConstraintObjective` to
search under a latency target *and* an energy budget simultaneously.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.hardware.device import DeviceModel
from repro.nn.layers.mask import channels_kept
from repro.space.architecture import Architecture
from repro.space.operators import Primitive
from repro.space.search_space import SearchSpace


class EnergyModel:
    """Per-inference energy of networks on a simulated device."""

    def __init__(self, device: DeviceModel):
        self.device = device

    # -- kernel-level --------------------------------------------------------

    def primitive_energy_j(
        self, prim: Primitive, batch: Optional[int] = None
    ) -> float:
        """Energy of one kernel in joules (dynamic + static-over-time)."""
        spec = self.device.spec
        b = spec.batch_size if batch is None else batch
        dynamic = (
            prim.flops * b * spec.pj_per_mac
            + (prim.bytes_read + prim.bytes_written) * b * spec.pj_per_byte
        ) * 1e-12
        static = spec.static_watts * self.device.primitive_time_s(prim, batch)
        return dynamic + static

    # -- network-level --------------------------------------------------------

    def network_energy_mj(
        self,
        layer_primitives: Sequence[Sequence[Primitive]],
        extra_primitives: Sequence[Primitive] = (),
        batch: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """End-to-end energy per inference batch, in millijoules.

        The static power also burns through the latency model's
        boundary and base overheads. With ``rng``, multiplicative
        measurement noise is applied (a power rail is at least as noisy
        as a timer).
        """
        spec = self.device.spec
        total_j = spec.static_watts * spec.base_overhead_s
        boundaries = 0
        for layer in layer_primitives:
            if not layer:
                continue
            boundaries += 1
            for prim in layer:
                total_j += self.primitive_energy_j(prim, batch)
        if extra_primitives:
            boundaries += 1
            for prim in extra_primitives:
                total_j += self.primitive_energy_j(prim, batch)
        total_j += spec.static_watts * boundaries * spec.layer_overhead_s
        total_j *= spec.time_scale  # static time scales with latency
        if rng is not None and spec.noise_sigma > 0:
            total_j *= float(np.exp(rng.normal(0.0, spec.noise_sigma)))
        return total_j * 1e3

    def arch_energy_mj(
        self,
        space: SearchSpace,
        arch: Architecture,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Per-inference energy of a search-space architecture."""
        return self.network_energy_mj(
            space.arch_primitives(arch),
            space.stem_head_primitives(arch),
            rng=rng,
        )

    def operator_energy_mj(
        self, space: SearchSpace, layer: int, op_index: int, factor: float,
        cin: int,
    ) -> float:
        """Isolated energy of one operator cell (for the energy LUT)."""
        from repro.space.operators import get_operator

        geom = space.geometry[layer]
        cout = channels_kept(geom.max_out_channels, factor)
        prims = get_operator(op_index).primitives(
            cin, cout, geom.in_size, geom.stride
        )
        total = sum(self.primitive_energy_j(p) for p in prims)
        return total * self.device.spec.time_scale * 1e3


class EnergyPredictor:
    """LUT-plus-bias energy model — the Eq. 2-3 pattern applied to power.

    Built the same way as :class:`repro.hardware.LatencyPredictor`:
    micro-benchmark each (layer, op, cin, factor) cell on the simulated
    power rail, then calibrate a constant bias against end-to-end
    measurements of M sampled architectures.
    """

    def __init__(self, space: SearchSpace, model: EnergyModel):
        self.space = space
        self.model = model
        self.entries: Dict = {}
        self.stem_head_mj: Dict[int, float] = {}
        self.bias_mj = 0.0
        self.calibrated = False

    def build(self, samples_per_cell: int = 2, seed: int = 0) -> "EnergyPredictor":
        """Micro-benchmark every operator cell (with measurement noise)."""
        from repro.hardware.lut import layer_cin_choices

        if samples_per_cell < 1:
            raise ValueError("samples_per_cell must be >= 1")
        rng = np.random.default_rng(seed)
        sigma = self.model.device.spec.noise_sigma
        space = self.space

        def measured(base: float) -> float:
            if sigma > 0 and base > 0:
                draws = base * np.exp(
                    rng.normal(0.0, sigma, size=samples_per_cell)
                )
                return float(np.mean(draws))
            return base

        for layer in range(space.num_layers):
            for cin in layer_cin_choices(space, layer):
                for op in space.candidate_ops[layer]:
                    for factor in space.candidate_factors[layer]:
                        base = self.model.operator_energy_mj(
                            space, layer, op, factor, cin
                        )
                        key = (layer, op, cin, round(factor, 6))
                        self.entries[key] = measured(base)

        # stem + per-width head cells, as in the latency LUT.
        last_max = space.geometry[-1].max_out_channels
        scale = self.model.device.spec.time_scale
        stem_mj = measured(
            sum(
                self.model.primitive_energy_j(p)
                for p in space.stem_primitives()
            ) * scale * 1e3
        )
        for factor in space.candidate_factors[-1]:
            cin = channels_kept(last_max, factor)
            if cin not in self.stem_head_mj:
                head = sum(
                    self.model.primitive_energy_j(p)
                    for p in space.head_primitives(cin)
                ) * scale * 1e3
                self.stem_head_mj[cin] = stem_mj + measured(head)
        return self

    def predict(self, arch: Architecture) -> float:
        """Predicted per-inference energy in millijoules."""
        if not self.entries:
            raise RuntimeError("call build() before predict()")
        total = 0.0
        channels = self.space.active_channels(arch)
        for layer, (op, factor) in enumerate(zip(arch.ops, arch.factors)):
            cin = channels[layer][0]
            total += self.entries[(layer, op, cin, round(factor, 6))]
        total += self.stem_head_mj[channels[-1][1]]
        return total + self.bias_mj

    def calibrate_bias(
        self, num_archs: int = 30, seed: int = 1
    ) -> float:
        """Fit the constant bias against noisy end-to-end measurements."""
        rng = np.random.default_rng(seed)
        noise_rng = np.random.default_rng(seed + 1)
        archs = [self.space.sample(rng) for _ in range(num_archs)]
        measured = [
            self.model.arch_energy_mj(self.space, a, rng=noise_rng)
            for a in archs
        ]
        predicted = [self.predict(a) - self.bias_mj for a in archs]
        self.bias_mj = float(np.mean(measured) - np.mean(predicted))
        self.calibrated = True
        return self.bias_mj
