"""The paper's hardware performance model (Eq. 2-3).

``LAT(arch) = sum_l LAT(op^l) + B`` where the per-operator terms come
from a micro-benchmark LUT and ``B`` compensates the communication
overheads of sequential layers:

``B = (1/M) * sum_i [ LAT+(arch_i) - sum_l LAT(op^l_i) ]``

with ``LAT+`` the measured end-to-end on-device latency over ``M``
sampled architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.degradation import DegradationReport
from repro.hardware.faults import ProbeError
from repro.hardware.lut import LatencyLUT
from repro.space.operators import get_operator
from repro.hardware.metrics import mean_bias, pearson, rmse, spearman
from repro.hardware.profiler import OnDeviceProfiler
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


@dataclass(frozen=True)
class PredictorReport:
    """Accuracy of a latency predictor on an evaluation set."""

    device_key: str
    num_archs: int
    rmse_ms: float
    mae_ms: float
    bias_ms: float
    pearson_r: float
    spearman_rho: float

    def __str__(self) -> str:
        return (
            f"[{self.device_key}] n={self.num_archs} "
            f"RMSE={self.rmse_ms:.3f}ms MAE={self.mae_ms:.3f}ms "
            f"bias={self.bias_ms:+.3f}ms r={self.pearson_r:.4f} "
            f"rho={self.spearman_rho:.4f}"
        )


class LatencyPredictor:
    """LUT-plus-bias latency model for one device.

    Typical usage::

        lut = LatencyLUT.build(space, device)
        predictor = LatencyPredictor(lut, space)
        predictor.calibrate_bias(space, profiler, num_archs=40, seed=1)
        ms = predictor.predict(arch)
    """

    def __init__(
        self,
        lut: LatencyLUT,
        space: SearchSpace,
        bias_ms: float = 0.0,
        ledger=None,
        degraded_ok: bool = False,
        regression_fallback=None,
        degradation: Optional[DegradationReport] = None,
    ):
        self.lut = lut
        self.space = space
        self.bias_ms = bias_ms
        self.calibrated = False
        self.ledger = ledger
        # Graceful-degradation policy: with degraded_ok, a missing LUT
        # cell is served by the nearest present cell (or, for a LUT too
        # empty to interpolate, by the regression predictor when one is
        # supplied) and recorded on the degradation report — instead of
        # a mid-search KeyError.
        self.degraded_ok = degraded_ok
        self.regression_fallback = regression_fallback
        self.degradation = (
            degradation if degradation is not None else DegradationReport()
        )
        # Faults observed while the LUT was built belong to this
        # predictor's story too.
        if lut.build_degradation.degraded():
            self.degradation.merge(lut.build_degradation)

    @property
    def device_key(self) -> str:
        return self.lut.device_key

    # -- Eq. 2 ----------------------------------------------------------------

    def _regression_predict(self, arch: Architecture) -> float:
        self.degradation.regression_fallbacks += 1
        self.degradation.record_event(
            "LUT could not answer; prediction served by the regression "
            "fallback predictor"
        )
        return float(self.regression_fallback.predict(arch))

    def predict(self, arch: Architecture) -> float:
        """Predicted end-to-end latency in milliseconds."""
        if self.ledger is not None:
            self.ledger.record_prediction()
        if not self.degraded_ok:
            return self.lut.sum_ops_ms(arch, self.space) + self.bias_ms
        try:
            return (
                self.lut.sum_ops_ms(
                    arch, self.space, fallback=True, report=self.degradation
                )
                + self.bias_ms
            )
        except KeyError:
            if self.regression_fallback is None:
                raise
            return self._regression_predict(arch) + self.bias_ms

    def predict_many(self, archs: Sequence[Architecture]) -> List[float]:
        """Batched :meth:`predict` via the dense LUT table.

        One fancy-indexed gather replaces ``P x L`` dict lookups;
        returns exactly what ``[self.predict(a) for a in archs]`` would
        — including on degraded LUTs, where both paths consult the same
        memoized nearest-cell substitutes.
        """
        archs = list(archs)
        if self.ledger is not None:
            self.ledger.record_prediction(count=len(archs))
        if not self.degraded_ok:
            sums = self.lut.sum_ops_ms_batch(archs, self.space)
            return [float(s) + self.bias_ms for s in sums]
        try:
            sums = self.lut.sum_ops_ms_batch(
                archs, self.space, fallback=True, report=self.degradation
            )
        except KeyError:
            if self.regression_fallback is None:
                raise
            return [self._regression_predict(a) + self.bias_ms for a in archs]
        return [float(s) + self.bias_ms for s in sums]

    def breakdown(self, arch: Architecture) -> List[Tuple[str, float]]:
        """Per-component predicted latency: stem, each layer, head, B.

        The per-layer terms are the LUT cells the prediction sums —
        useful for seeing *where* an architecture spends its budget
        (e.g. which layers the EA should thin out).
        """
        channels = self.space.active_channels(arch)
        parts: List[Tuple[str, float]] = [("stem", self.lut.stem_ms)]
        for layer, (op, factor) in enumerate(zip(arch.ops, arch.factors)):
            cin = channels[layer][0]
            name = f"layer{layer:02d}:{get_operator(op).name}@{factor:.1f}"
            parts.append((name, self.lut.lookup(layer, op, cin, factor)))
        last_c = channels[-1][1]
        parts.append(("head", self.lut.head_ms.get(last_c, 0.0)))
        parts.append(("bias B", self.bias_ms))
        return parts

    # -- Eq. 3 ----------------------------------------------------------------

    def calibrate_bias(
        self,
        space: SearchSpace,
        profiler: OnDeviceProfiler,
        num_archs: int = 40,
        seed: int = 1,
        archs: Optional[Sequence[Architecture]] = None,
    ) -> float:
        """Estimate ``B`` from ``M`` measured architectures.

        Returns the fitted bias (also stored on the predictor). An
        explicit architecture list can be supplied; otherwise ``M``
        architectures are sampled uniformly from the space, as in the
        paper.
        """
        if archs is None:
            rng = np.random.default_rng(seed)
            archs = [space.sample(rng) for _ in range(num_archs)]
        if not archs:
            raise ValueError("bias calibration needs at least one architecture")
        archs = list(archs)
        if self.degraded_ok:
            # Graceful path: a session whose probes exhausted their
            # retries is dropped from *both* Eq. 3 means (the pairing
            # must stay aligned), and the concession is recorded.
            measured = profiler.measure_many_ms(space, archs, on_failure="skip")
            kept = [
                (m, a) for m, a in zip(measured, archs) if not np.isnan(m)
            ]
            if not kept:
                raise ProbeError(
                    "bias calibration failed: every measurement session "
                    "was dropped after retries"
                )
            if len(kept) < len(archs):
                self.degradation.record_event(
                    f"bias calibration degraded: {len(archs) - len(kept)} of "
                    f"{len(archs)} sessions dropped"
                )
            measured = [m for m, _ in kept]
            summed = [
                self.lut.sum_ops_ms(
                    a, self.space, fallback=True, report=self.degradation
                )
                for _, a in kept
            ]
        else:
            measured = profiler.measure_many_ms(space, archs)
            summed = [self.lut.sum_ops_ms(a, self.space) for a in archs]
        self.bias_ms = float(np.mean(measured) - np.mean(summed))
        self.calibrated = True
        return self.bias_ms

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        space: SearchSpace,
        profiler: OnDeviceProfiler,
        archs: Sequence[Architecture],
    ) -> PredictorReport:
        """Compare predictions against fresh on-device measurements."""
        if not archs:
            raise ValueError("evaluation needs at least one architecture")
        measured = profiler.measure_many_ms(space, list(archs))
        predicted = self.predict_many(archs)
        return PredictorReport(
            device_key=self.device_key,
            num_archs=len(archs),
            rmse_ms=rmse(predicted, measured),
            mae_ms=float(np.mean(np.abs(np.array(predicted) - np.array(measured)))),
            bias_ms=mean_bias(predicted, measured),
            pearson_r=pearson(predicted, measured),
            spearman_rho=spearman(predicted, measured),
        )
