"""FLOPs-proxy latency predictor — the straw man Fig. 2 dismisses.

A common shortcut predicts latency as an affine function of FLOPs.
Fig. 2 shows why that fails: equal-FLOPs architectures differ widely in
device latency. This predictor exists so the comparison is quantitative:
fit it on measured architectures, evaluate it with the same
:class:`~repro.hardware.predictor.PredictorReport`, and watch it lose
to the LUT+B model by a wide RMSE margin (see
``tests/hardware/test_proxy_predictor.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.metrics import mean_bias, pearson, rmse, spearman
from repro.hardware.predictor import PredictorReport
from repro.hardware.profiler import OnDeviceProfiler
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


class FlopsLatencyPredictor:
    """``latency ~= a * FLOPs + b``, least-squares fit on measurements."""

    def __init__(self, space: SearchSpace, device_key: str = "unknown"):
        self.space = space
        self.device_key = device_key
        self.slope = 0.0
        self.intercept = 0.0
        self.fitted = False

    def fit(
        self,
        profiler: OnDeviceProfiler,
        num_archs: int = 40,
        seed: int = 0,
        archs: Optional[Sequence[Architecture]] = None,
    ) -> "FlopsLatencyPredictor":
        """Fit the affine map on measured (FLOPs, latency) pairs."""
        if archs is None:
            rng = np.random.default_rng(seed)
            archs = [self.space.sample(rng) for _ in range(num_archs)]
        if len(archs) < 2:
            raise ValueError("need at least two architectures to fit a line")
        flops = np.array([self.space.arch_flops(a) for a in archs])
        measured = np.array(profiler.measure_many_ms(self.space, list(archs)))
        self.slope, self.intercept = np.polyfit(flops, measured, deg=1)
        self.device_key = profiler.device.spec.key
        self.fitted = True
        return self

    def predict(self, arch: Architecture) -> float:
        """Predicted latency in milliseconds."""
        if not self.fitted:
            raise RuntimeError("call fit() before predict()")
        return float(self.slope * self.space.arch_flops(arch) + self.intercept)

    def predict_many(self, archs: Sequence[Architecture]) -> List[float]:
        return [self.predict(a) for a in archs]

    def evaluate(
        self, profiler: OnDeviceProfiler, archs: Sequence[Architecture]
    ) -> PredictorReport:
        """Same report format as the LUT+B predictor, for comparison."""
        if not archs:
            raise ValueError("evaluation needs at least one architecture")
        measured = profiler.measure_many_ms(self.space, list(archs))
        predicted = self.predict_many(archs)
        return PredictorReport(
            device_key=self.device_key,
            num_archs=len(archs),
            rmse_ms=rmse(predicted, measured),
            mae_ms=float(np.mean(np.abs(np.array(predicted) - np.array(measured)))),
            bias_ms=mean_bias(predicted, measured),
            pearson_r=pearson(predicted, measured),
            spearman_rho=spearman(predicted, measured),
        )
