"""Crash-safe run state: atomic artifacts, checkpoints, bit-exact resume.

The subsystem behind ``repro search --resume RUN_DIR``:

* :mod:`repro.runstate.atomic` — write-then-rename file emission, used
  by every JSON artifact the stack produces.
* :mod:`repro.runstate.manifest` — the versioned ``manifest.json``
  schema (validated both at resume time and by the RD211 lint check).
* :mod:`repro.runstate.rundir` — :class:`RunDir` (checkpoint storage
  with self-checksummed files) and :class:`PhaseCheckpoint` (the handle
  search components save intra-phase progress through).
* :mod:`repro.runstate.rng` — numpy generator state capture/restore,
  the piece that makes a resumed run *bit-exact* with an uninterrupted
  one rather than merely "close".

See ``docs/robustness.md`` for the run-directory layout and the resume
semantics contract.
"""

from repro.runstate.atomic import (
    atomic_path,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_text,
)
from repro.runstate.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    RunManifest,
    validate_manifest_dict,
)
from repro.runstate.rng import (
    generator_state,
    restore_generator,
    set_generator_state,
)
from repro.runstate.rundir import (
    CorruptCheckpointError,
    MemoryCheckpoint,
    PhaseCheckpoint,
    RunDir,
    RunStateError,
)

__all__ = [
    "atomic_path",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "sha256_text",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "RunManifest",
    "validate_manifest_dict",
    "generator_state",
    "restore_generator",
    "set_generator_state",
    "CorruptCheckpointError",
    "MemoryCheckpoint",
    "PhaseCheckpoint",
    "RunDir",
    "RunStateError",
]
