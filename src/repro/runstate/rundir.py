"""Crash-safe run directories: checkpoint storage + resume semantics.

Layout (see ``docs/robustness.md``)::

    RUN_DIR/
      manifest.json             # identity + phase progress (RunManifest)
      checkpoints/<phase>.json  # self-checksummed phase state

Every file is written atomically (:mod:`repro.runstate.atomic`), and
each checkpoint carries a SHA-256 of its own record, so any crash
window leaves the directory in one of exactly two states per file: the
previous good version or the new good version. The manifest is the
*index* (which phases exist, which finished); the checkpoint files are
the *truth* for intra-phase progress — a checkpoint's own ``complete``
flag wins over the manifest status, which closes the race where a
checkpoint lands on disk but the process dies before the manifest
update.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

from repro.runstate.atomic import atomic_write_text, sha256_text
from repro.runstate.manifest import (
    CHECKPOINT_FORMAT,
    MANIFEST_NAME,
    PHASE_COMPLETE,
    PHASE_PENDING,
    PHASE_RUNNING,
    RunManifest,
)


class RunStateError(Exception):
    """A run directory cannot be created, read, or resumed.

    The message is always a single actionable line — the CLI surfaces
    it verbatim with exit code 2.
    """


class CorruptCheckpointError(RunStateError):
    """A checkpoint file failed its self-checksum or schema check."""


def _canonical_json(record: dict) -> str:
    """The byte-stable serialization the checkpoint checksum covers."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class RunDir:
    """One crash-safe run directory (create new or open for resume)."""

    def __init__(self, path: Path, manifest: RunManifest):
        self.path = Path(path)
        self.manifest = manifest

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        kind: str,
        config: Dict,
        phase_order: Sequence[str],
    ) -> "RunDir":
        """Initialise a fresh run directory (fails if one exists)."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if manifest_path.exists():
            raise RunStateError(
                f"run directory {path} already contains a manifest; "
                "pass --resume to continue it or choose a new directory"
            )
        path.mkdir(parents=True, exist_ok=True)
        (path / "checkpoints").mkdir(exist_ok=True)
        run = cls(
            path,
            RunManifest(kind=kind, config=dict(config), phase_order=list(phase_order)),
        )
        run._write_manifest()
        return run

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        expect_kind: Optional[str] = None,
        expect_config: Optional[Dict] = None,
    ) -> "RunDir":
        """Open an existing run directory for resume.

        ``expect_config`` is compared key-by-key against the stored
        config; any mismatch aborts the resume, because continuing a
        run under different settings would silently produce a result
        that matches neither.
        """
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not path.exists():
            raise RunStateError(
                f"run directory {path} does not exist; "
                "pass --run-dir to start a new checkpointed run"
            )
        if not manifest_path.exists():
            raise RunStateError(
                f"{path} has no {MANIFEST_NAME} — not a run directory; "
                "pass --run-dir to start a new checkpointed run"
            )
        try:
            payload = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RunStateError(
                f"cannot read {manifest_path}: {exc}; the manifest is "
                "corrupt — restart the run in a fresh directory"
            ) from exc
        try:
            manifest = RunManifest.from_dict(payload)
        except ValueError as exc:
            raise RunStateError(
                f"invalid manifest at {manifest_path}: {exc}"
            ) from exc
        if expect_kind is not None and manifest.kind != expect_kind:
            raise RunStateError(
                f"{path} holds a {manifest.kind!r} run, not {expect_kind!r}; "
                "resume it with the matching subcommand"
            )
        if expect_config is not None:
            for key, value in expect_config.items():
                stored = manifest.config.get(key)
                if stored != value:
                    raise RunStateError(
                        f"run directory {path} was started with "
                        f"{key}={stored!r} but this invocation passes "
                        f"{key}={value!r}; resume with the original "
                        "settings or start a new run directory"
                    )
        return cls(path, manifest)

    # -- manifest ---------------------------------------------------------------

    @property
    def config(self) -> Dict:
        return self.manifest.config

    def _write_manifest(self) -> None:
        atomic_write_text(
            self.path / MANIFEST_NAME,
            json.dumps(self.manifest.to_dict(), indent=2) + "\n",
        )

    def _checkpoint_path(self, phase: str) -> Path:
        return self.path / self.manifest.phases[phase]["file"]

    # -- checkpoints ------------------------------------------------------------

    def save_checkpoint(self, phase: str, payload: dict, complete: bool = False) -> None:
        """Atomically persist one phase's state.

        The record is self-checksummed: readers validate the embedded
        SHA-256 before trusting any field, so a torn or bit-flipped
        file is detected rather than resumed from. The manifest status
        is updated *after* the checkpoint lands — if the process dies
        between the two writes, the checkpoint's own ``complete`` flag
        still tells the resume the truth.
        """
        if phase not in self.manifest.phases:
            raise RunStateError(
                f"phase {phase!r} is not part of this run "
                f"(expected one of {self.manifest.phase_order})"
            )
        record = {
            "format": CHECKPOINT_FORMAT,
            "phase": phase,
            "complete": bool(complete),
            "payload": payload,
        }
        body = _canonical_json(record)
        envelope = {"sha256": sha256_text(body), "record": record}
        target = self._checkpoint_path(phase)
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(target, json.dumps(envelope) + "\n")
        status = PHASE_COMPLETE if complete else PHASE_RUNNING
        if self.manifest.status(phase) != status:
            self.manifest.set_status(phase, status)
            self._write_manifest()

    def load_checkpoint(self, phase: str) -> Optional[dict]:
        """The validated checkpoint *record* for a phase, or ``None``.

        Raises :class:`CorruptCheckpointError` when the file exists but
        fails validation — a resume must never silently continue from
        damaged state.
        """
        if phase not in self.manifest.phases:
            raise RunStateError(
                f"phase {phase!r} is not part of this run "
                f"(expected one of {self.manifest.phase_order})"
            )
        target = self._checkpoint_path(phase)
        if not target.exists():
            return None
        try:
            envelope = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptCheckpointError(
                f"checkpoint {target} is unreadable ({exc}); delete it to "
                f"restart the {phase!r} phase from its last phase boundary"
            ) from exc
        record = envelope.get("record") if isinstance(envelope, dict) else None
        stated = envelope.get("sha256") if isinstance(envelope, dict) else None
        if not isinstance(record, dict) or not isinstance(stated, str):
            raise CorruptCheckpointError(
                f"checkpoint {target} has an unexpected layout; delete it "
                f"to restart the {phase!r} phase"
            )
        actual = sha256_text(_canonical_json(record))
        if actual != stated:
            raise CorruptCheckpointError(
                f"checkpoint {target} failed its checksum (expected "
                f"{stated[:12]}…, got {actual[:12]}…); delete it to restart "
                f"the {phase!r} phase"
            )
        if record.get("format") != CHECKPOINT_FORMAT:
            raise CorruptCheckpointError(
                f"checkpoint {target} has format {record.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        return record

    def phase_complete(self, phase: str) -> bool:
        """Whether a phase finished (checkpoint flag wins over manifest)."""
        record = self.load_checkpoint(phase)
        if record is not None:
            return bool(record["complete"])
        return self.manifest.status(phase) == PHASE_COMPLETE

    def reset_phase(self, phase: str) -> None:
        """Drop a phase's checkpoint and mark it pending again."""
        target = self._checkpoint_path(phase)
        target.unlink(missing_ok=True)
        self.manifest.set_status(phase, PHASE_PENDING)
        self._write_manifest()


class PhaseCheckpoint:
    """One phase's save/load handle, handed to a search component.

    Decouples the searchers from run-directory mechanics: a component
    only ever calls :meth:`load` once at start and :meth:`save` at each
    progress boundary. ``extra_save``/``extra_restore`` let the *owner*
    of surrounding state (the pipeline's evaluation cache, measurement
    ledger, profiler rng) piggyback that state on every checkpoint
    without the component knowing it exists.
    """

    def __init__(
        self,
        run: RunDir,
        phase: str,
        extra_save: Optional[Callable[[], dict]] = None,
        extra_restore: Optional[Callable[[dict], None]] = None,
    ):
        self.run = run
        self.phase = phase
        self._extra_save = extra_save
        self._extra_restore = extra_restore

    def load(self) -> Optional[dict]:
        """The phase payload to resume from, or ``None`` for a fresh start.

        Restores any piggybacked owner state as a side effect.
        """
        record = self.run.load_checkpoint(self.phase)
        if record is None:
            return None
        payload = record["payload"]
        if self._extra_restore is not None and "owner_state" in payload:
            self._extra_restore(payload["owner_state"])
        return payload

    def is_complete(self) -> bool:
        return self.run.phase_complete(self.phase)

    def save(self, payload: dict, complete: bool = False) -> None:
        if self._extra_save is not None:
            payload = dict(payload)
            payload["owner_state"] = self._extra_save()
        self.run.save_checkpoint(self.phase, payload, complete=complete)


class MemoryCheckpoint:
    """In-memory stand-in for :class:`PhaseCheckpoint` (tests, dry runs)."""

    def __init__(self) -> None:
        self.payload: Optional[dict] = None
        self.complete = False
        self.saves = 0

    def load(self) -> Optional[dict]:
        return self.payload

    def is_complete(self) -> bool:
        return self.complete

    def save(self, payload: dict, complete: bool = False) -> None:
        # Round-trip through JSON so tests exercise exactly what a real
        # checkpoint file would preserve.
        self.payload = json.loads(json.dumps(payload))
        self.complete = bool(complete)
        self.saves += 1
