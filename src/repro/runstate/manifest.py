"""The run-directory manifest: what a run is and how far it got.

One ``manifest.json`` sits at the root of every run directory. It names
the manifest schema version, the kind of run (``search``, ``shrink``,
``front``), the configuration fingerprint the run was started with, and
the ordered list of pipeline phases with their completion status. The
per-phase *state* lives in separate self-checksummed checkpoint files
(see :mod:`repro.runstate.rundir`); the manifest only records identity
and progress, which keeps its update window tiny and its validation
cheap — the properties the RD211 lint check and ``--resume`` both rely
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
CHECKPOINT_DIR = "checkpoints"
CHECKPOINT_FORMAT = 1

PHASE_PENDING = "pending"
PHASE_RUNNING = "running"
PHASE_COMPLETE = "complete"
PHASE_STATUSES = (PHASE_PENDING, PHASE_RUNNING, PHASE_COMPLETE)

RUN_KINDS = ("search", "shrink", "front", "serve", "custom")


def checkpoint_relpath(phase: str) -> str:
    """Manifest-relative path of a phase's checkpoint file."""
    return f"{CHECKPOINT_DIR}/{phase}.json"


@dataclass
class RunManifest:
    """In-memory form of ``manifest.json``."""

    kind: str
    config: Dict
    phase_order: List[str]
    version: int = MANIFEST_VERSION
    phases: Dict[str, Dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for phase in self.phase_order:
            self.phases.setdefault(
                phase,
                {"status": PHASE_PENDING, "file": checkpoint_relpath(phase)},
            )

    def status(self, phase: str) -> str:
        return self.phases[phase]["status"]

    def set_status(self, phase: str, status: str) -> None:
        if status not in PHASE_STATUSES:
            raise ValueError(f"unknown phase status {status!r}")
        if phase not in self.phases:
            raise KeyError(f"phase {phase!r} is not part of this run")
        self.phases[phase]["status"] = status

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "kind": self.kind,
            "config": self.config,
            "phase_order": list(self.phase_order),
            "phases": {k: dict(v) for k, v in self.phases.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        problems = validate_manifest_dict(payload)
        if problems:
            raise ValueError("; ".join(problems))
        return cls(
            kind=payload["kind"],
            config=dict(payload["config"]),
            phase_order=list(payload["phase_order"]),
            version=int(payload["version"]),
            phases={k: dict(v) for k, v in payload["phases"].items()},
        )


def validate_manifest_dict(payload: object) -> List[str]:
    """Schema/consistency problems of a raw manifest payload.

    Returns human-readable problem strings (empty = valid). Shared by
    :meth:`RunManifest.from_dict` and the RD211 lint check so both
    enforce exactly the same contract.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["manifest payload is not a JSON object"]
    version = payload.get("version")
    if not isinstance(version, int):
        problems.append("missing or non-integer 'version'")
    elif version != MANIFEST_VERSION:
        problems.append(
            f"unsupported manifest version {version} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append("missing 'kind'")
    elif kind not in RUN_KINDS:
        problems.append(f"unknown run kind {kind!r} (expected one of {RUN_KINDS})")
    if not isinstance(payload.get("config"), dict):
        problems.append("missing 'config' object")

    phase_order = payload.get("phase_order")
    if (
        not isinstance(phase_order, list)
        or not phase_order
        or not all(isinstance(p, str) and p for p in phase_order)
    ):
        problems.append("'phase_order' must be a non-empty list of phase names")
        return problems
    if len(set(phase_order)) != len(phase_order):
        problems.append("'phase_order' contains duplicate phase names")

    phases = payload.get("phases")
    if not isinstance(phases, dict):
        problems.append("missing 'phases' object")
        return problems
    for name in phase_order:
        if name not in phases:
            problems.append(f"phase {name!r} is in phase_order but has no entry")
    for name, entry in phases.items():
        if name not in phase_order:
            problems.append(f"phase {name!r} has an entry but is not in phase_order")
            continue
        if not isinstance(entry, dict):
            problems.append(f"phase {name!r} entry is not an object")
            continue
        status = entry.get("status")
        if status not in PHASE_STATUSES:
            problems.append(
                f"phase {name!r} has invalid status {status!r} "
                f"(expected one of {PHASE_STATUSES})"
            )
        if not isinstance(entry.get("file"), str):
            problems.append(f"phase {name!r} is missing its checkpoint 'file'")

    # Phase ordering: progress is monotone along phase_order — once a
    # phase is not complete, no later phase may be complete, and at most
    # one phase can be mid-flight.
    statuses = [
        phases.get(name, {}).get("status")
        for name in phase_order
        if isinstance(phases.get(name), dict)
    ]
    seen_incomplete = False
    for name, status in zip(phase_order, statuses):
        if status != PHASE_COMPLETE and status in PHASE_STATUSES:
            seen_incomplete = True
        elif status == PHASE_COMPLETE and seen_incomplete:
            problems.append(
                f"phase ordering violated: {name!r} is complete but an "
                "earlier phase is not"
            )
    running = [n for n, s in zip(phase_order, statuses) if s == PHASE_RUNNING]
    if len(running) > 1:
        problems.append(
            f"more than one phase marked running: {', '.join(running)}"
        )
    return problems
