"""Atomic file emission: write-then-rename with fsync.

Every artifact the stack emits — checkpoints, run manifests, search
traces, benchmark results — goes through this module so an interrupt
(SIGKILL, power loss, full disk) can never leave a torn half-file
behind: readers either see the complete old content or the complete new
content, never a prefix.

The recipe is the standard one: write to a temporary file *in the same
directory* (so the final rename is within one filesystem), flush and
fsync it, then ``os.replace`` over the destination. The directory entry
is fsynced best-effort afterwards; on filesystems without directory
fsync the rename itself is still atomic, only its durability window
widens.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

PathLike = Union[str, Path]


def sha256_text(text: str) -> str:
    """Hex SHA-256 of a text payload (the checkpoint checksum)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_path(path: PathLike, suffix: str = ".tmp") -> Iterator[Path]:
    """Yield a temporary path that atomically becomes ``path`` on success.

    For writers that need a *filename* rather than a handle
    (``np.savez``, external tools). The temporary file lives in the
    destination directory; on an exception it is removed and the
    destination is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=suffix
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        yield tmp
        with open(tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: PathLike, obj, indent: int = 2) -> Path:
    """Serialize ``obj`` as JSON and atomically replace ``path``.

    The trailing newline keeps the artifacts friendly to text tools.
    """
    return atomic_write_text(path, json.dumps(obj, indent=indent) + "\n")
