"""Capture and restore numpy ``Generator`` state for checkpoints.

The determinism contract of the search stack is that every random draw
happens in the parent process from generators with known seeds (see
``docs/parallel.md``). Resuming a run bit-exactly therefore reduces to
restoring each generator to the state it had at the checkpoint — numpy
exposes that state as a JSON-serializable dict of Python ints, and JSON
round-trips Python ints exactly, so the captured state survives the trip
through a checkpoint file without loss.
"""

from __future__ import annotations

import copy

import numpy as np


def generator_state(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state (JSON-serializable)."""
    return copy.deepcopy(rng.bit_generator.state)


def restore_generator(state: dict) -> np.random.Generator:
    """A fresh ``Generator`` positioned exactly at ``state``."""
    name = state["bit_generator"]
    try:
        bit_generator_cls = getattr(np.random, name)
    except AttributeError as exc:
        raise ValueError(
            f"unknown bit generator {name!r} in checkpointed rng state"
        ) from exc
    bit_generator = bit_generator_cls()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)


def set_generator_state(rng: np.random.Generator, state: dict) -> None:
    """Rewind an existing generator in place to ``state``."""
    if rng.bit_generator.state["bit_generator"] != state["bit_generator"]:
        raise ValueError(
            "cannot restore state: bit generator kind mismatch "
            f"({rng.bit_generator.state['bit_generator']} vs "
            f"{state['bit_generator']})"
        )
    rng.bit_generator.state = copy.deepcopy(state)
