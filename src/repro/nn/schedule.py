"""Learning-rate schedules.

The paper anneals the supernet learning rate from 0.5 to zero with a
cosine schedule over 100 epochs, and warms up for 5 epochs when training
discovered architectures from scratch.
"""

from __future__ import annotations

import math


class Schedule:
    """Maps a step index in ``[0, total_steps)`` to a learning rate."""

    def lr_at(self, step: int) -> float:
        raise NotImplementedError


class ConstantSchedule(Schedule):
    """Fixed learning rate (used for short fine-tuning stages)."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def lr_at(self, step: int) -> float:
        del step
        return self.lr


class CosineSchedule(Schedule):
    """Cosine annealing from ``base_lr`` down to ``min_lr``."""

    def __init__(self, base_lr: float, total_steps: int, min_lr: float = 0.0):
        if base_lr <= 0 or total_steps <= 0 or min_lr < 0:
            raise ValueError("invalid cosine schedule parameters")
        if min_lr > base_lr:
            raise ValueError("min_lr must not exceed base_lr")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        step = min(max(step, 0), self.total_steps)
        cos = 0.5 * (1.0 + math.cos(math.pi * step / self.total_steps))
        return self.min_lr + (self.base_lr - self.min_lr) * cos


class WarmupCosineSchedule(Schedule):
    """Linear warmup followed by cosine annealing.

    Used when training HSCoNets from scratch: the paper warms up for the
    first five epochs before the cosine decay.
    """

    def __init__(
        self,
        base_lr: float,
        total_steps: int,
        warmup_steps: int,
        min_lr: float = 0.0,
    ):
        if warmup_steps < 0 or warmup_steps >= total_steps:
            raise ValueError("warmup_steps must be in [0, total_steps)")
        self.base_lr = base_lr
        self.warmup_steps = warmup_steps
        self.cosine = CosineSchedule(
            base_lr, total_steps - warmup_steps, min_lr=min_lr
        )

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        return self.cosine.lr_at(step - self.warmup_steps)
