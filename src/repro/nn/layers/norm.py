"""Batch normalization over NCHW activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalization with running statistics.

    Training mode normalizes with batch statistics and updates running
    mean/variance via exponential moving average; eval mode uses the
    running statistics. Affine parameters are excluded from weight decay,
    matching the paper's training recipe.
    """

    def __init__(self, num_channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_channels = num_channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(
            np.ones(num_channels), name="gamma", weight_decay=False
        )
        self.beta = Parameter(
            np.zeros(num_channels), name="beta", weight_decay=False
        )
        self.running_mean = np.zeros(num_channels)
        self.running_var = np.ones(num_channels)
        self._cache: Optional[dict] = None

    def reset_running_stats(self) -> None:
        """Reset running statistics (used when re-calibrating subnets)."""
        self.running_mean[:] = 0.0
        self.running_var[:] = 1.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"expected (N, {self.num_channels}, H, W) input, got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )
        if self.training:
            self._cache = {"x_hat": x_hat, "inv_std": inv_std}
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a cached training forward")
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        n, _, h, w = grad_out.shape
        m = n * h * w

        self.gamma.accumulate_grad((grad_out * x_hat).sum(axis=(0, 2, 3)))
        self.beta.accumulate_grad(grad_out.sum(axis=(0, 2, 3)))

        # Standard batch-norm backward in terms of normalized activations.
        g = grad_out * self.gamma.data[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_x = (
            inv_std[None, :, None, None] / m * (m * g - sum_g - x_hat * sum_gx)
        )
        self._cache = None
        return grad_x
