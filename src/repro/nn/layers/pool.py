"""Spatial pooling layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: Optional[dict] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        # Pool each channel independently by treating channels as batch.
        cols, out_h, out_w = im2col(
            x.reshape(n * c, 1, h, w), k, self.stride, self.padding
        )
        # cols: (N*C, k*k, OHW)
        if self.padding:
            # Padded positions must not win the max for non-negative inputs
            # only; use -inf fill by masking zeros introduced by padding.
            pass  # im2col pads with 0; acceptable after ReLU activations.
        idx = np.argmax(cols, axis=1)  # (N*C, OHW)
        out = np.take_along_axis(cols, idx[:, None, :], axis=1)[:, 0, :]
        if self.training:
            self._cache = {
                "idx": idx,
                "cols_shape": cols.shape,
                "x_shape": x.shape,
            }
        else:
            self._cache = None
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a cached training forward")
        idx = self._cache["idx"]
        cols_shape = self._cache["cols_shape"]
        n, c, h, w = self._cache["x_shape"]
        k = self.kernel_size

        grad_cols = np.zeros(cols_shape, dtype=grad_out.dtype)
        flat = grad_out.reshape(n * c, -1)
        np.put_along_axis(grad_cols, idx[:, None, :], flat[:, None, :], axis=1)
        grad_x = col2im(
            grad_cols, (n * c, 1, h, w), k, self.stride, self.padding
        ).reshape(n, c, h, w)
        self._cache = None
        return grad_x


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        cols, out_h, out_w = im2col(
            x.reshape(n * c, 1, h, w), k, self.stride, self.padding
        )
        out = cols.mean(axis=1)
        self._x_shape = x.shape if self.training else None
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called without a cached training forward")
        n, c, h, w = self._x_shape
        k = self.kernel_size
        flat = grad_out.reshape(n * c, 1, -1) / (k * k)
        grad_cols = np.broadcast_to(flat, (n * c, k * k, flat.shape[2]))
        grad_x = col2im(
            np.ascontiguousarray(grad_cols), (n * c, 1, h, w), k, self.stride, self.padding
        ).reshape(n, c, h, w)
        self._x_shape = None
        return grad_x


class GlobalAvgPool2d(Module):
    """Global average pooling: NCHW -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape if self.training else None
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called without a cached training forward")
        n, c, h, w = self._x_shape
        grad_x = np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()
        self._x_shape = None
        return grad_x
