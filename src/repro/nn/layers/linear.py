"""Fully connected layer (the classifier head)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.initializers import xavier_uniform, zeros_init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` over ``(N, in_features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(
            xavier_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(
                zeros_init((out_features,), rng), name="bias", weight_decay=False
            )
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected (N, {self.in_features}) input, got {x.shape}"
            )
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data[None, :]
        self._x = x if self.training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called without a cached training forward")
        self.weight.accumulate_grad(grad_out.T @ self._x)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_out.sum(axis=0))
        grad_x = grad_out @ self.weight.data
        self._x = None
        return grad_x
