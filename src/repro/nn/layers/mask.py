"""Channel masking — the mechanism behind dynamic channel scaling.

The paper (Sec. III-B) implements per-layer channel scaling by masking
the operator output with a 0/1 vector ``I^l in {0,1}^{S^l}``: scaling
factor ``c`` keeps the first ``round(c * S)`` channels and zeroes the
rest. Masked channels receive no gradient, so the supernet's shared
weights for those channels are untouched by a masked forward/backward —
exactly the "scaling down" behaviour the paper relies on to avoid
rebuilding the supernet topology.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def channels_kept(max_channels: int, factor: float) -> int:
    """Number of channels kept by scaling factor ``factor``.

    Uses round-half-away-from-zero and clamps to at least 1 channel,
    matching the paper's example (``5 x 0.5 ~= 3``).
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"scaling factor must be in (0, 1], got {factor}")
    kept = int(np.floor(max_channels * factor + 0.5))
    return max(1, min(max_channels, kept))


def make_mask(max_channels: int, factor: float) -> np.ndarray:
    """Build the 0/1 mask vector ``I`` for a scaling factor."""
    mask = np.zeros(max_channels, dtype=np.float64)
    mask[: channels_kept(max_channels, factor)] = 1.0
    return mask


class ChannelMask(Module):
    """Multiply NCHW activations by a per-channel 0/1 mask.

    The mask is mutable via :meth:`set_factor`, so a single supernet
    instance can evaluate any channel configuration without rebuilding.
    """

    def __init__(self, max_channels: int, factor: float = 1.0):
        super().__init__()
        self.max_channels = max_channels
        self.mask = make_mask(max_channels, factor)
        self.factor = factor

    def set_factor(self, factor: float) -> None:
        """Re-target the mask to a new scaling factor."""
        self.mask = make_mask(self.max_channels, factor)
        self.factor = factor

    @property
    def active_channels(self) -> int:
        return int(self.mask.sum())

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.max_channels:
            raise ValueError(
                f"expected {self.max_channels} channels, got {x.shape[1]}"
            )
        return x * self.mask[None, :, None, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self.mask[None, :, None, None]
