"""2-D convolution with optional grouping (depthwise as a special case).

ShuffleNetV2 blocks — the paper's operator family — only need dense 1x1
convolutions and depthwise kxk convolutions, both of which are covered by
``Conv2d(groups=...)``. The implementation lowers each group to a GEMM
via im2col.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.initializers import kaiming_normal, zeros_init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """Grouped 2-D convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; both must be divisible by ``groups``.
    kernel_size:
        Square kernel side length.
    stride, padding:
        Uniform spatial stride / zero padding.
    groups:
        ``1`` for a dense conv, ``in_channels`` for depthwise.
    bias:
        Whether to add a per-output-channel bias. Convolutions followed
        by batch norm should set this ``False`` (as the paper's blocks do).
    rng:
        Generator for weight initialization; required so supernet
        construction is reproducible.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}->{out_channels}) not divisible "
                f"by groups={groups}"
            )
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("kernel_size/stride must be >=1 and padding >=0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups

        rng = rng if rng is not None else np.random.default_rng(0)
        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_normal(weight_shape, rng), name="weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(
                zeros_init((out_channels,), rng), name="bias", weight_decay=False
            )

        self._cache: Optional[dict] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        g = self.groups
        cin_g = self.in_channels // g
        cout_g = self.out_channels // g
        k = self.kernel_size

        out = None
        cols_per_group = []
        out_h = out_w = 0
        for gi in range(g):
            xg = x[:, gi * cin_g : (gi + 1) * cin_g]
            cols, out_h, out_w = im2col(xg, k, self.stride, self.padding)
            # (cout_g, cin_g*k*k) @ (N, cin_g*k*k, OHW) -> (N, cout_g, OHW)
            wmat = self.weight.data[gi * cout_g : (gi + 1) * cout_g].reshape(cout_g, -1)
            yg = np.einsum("oc,ncp->nop", wmat, cols, optimize=True)
            if out is None:
                out = np.empty((n, self.out_channels, out_h * out_w), dtype=x.dtype)
            out[:, gi * cout_g : (gi + 1) * cout_g] = yg
            cols_per_group.append(cols)

        out = out.reshape(n, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None, None]

        if self.training:
            self._cache = {"cols": cols_per_group, "x_shape": x.shape}
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a cached training forward")
        cols_per_group = self._cache["cols"]
        x_shape = self._cache["x_shape"]
        n = grad_out.shape[0]
        g = self.groups
        cin_g = self.in_channels // g
        cout_g = self.out_channels // g
        k = self.kernel_size

        grad_flat = grad_out.reshape(n, self.out_channels, -1)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_flat.sum(axis=(0, 2)))

        grad_weight = np.zeros_like(self.weight.data)
        grad_x = np.empty(x_shape, dtype=grad_out.dtype)
        group_shape = (n, cin_g, x_shape[2], x_shape[3])
        for gi in range(g):
            gyg = grad_flat[:, gi * cout_g : (gi + 1) * cout_g]  # (N, cout_g, OHW)
            cols = cols_per_group[gi]  # (N, cin_g*k*k, OHW)
            # dW: sum over batch and positions.
            gw = np.einsum("nop,ncp->oc", gyg, cols, optimize=True)
            grad_weight[gi * cout_g : (gi + 1) * cout_g] = gw.reshape(
                cout_g, cin_g, k, k
            )
            # dX: backproject columns.
            wmat = self.weight.data[gi * cout_g : (gi + 1) * cout_g].reshape(cout_g, -1)
            gcols = np.einsum("oc,nop->ncp", wmat, gyg, optimize=True)
            grad_x[:, gi * cin_g : (gi + 1) * cin_g] = col2im(
                gcols, group_shape, k, self.stride, self.padding
            )

        self.weight.accumulate_grad(grad_weight)
        self._cache = None
        return grad_x
