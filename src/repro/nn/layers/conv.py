"""2-D convolution with optional grouping (depthwise as a special case).

ShuffleNetV2 blocks — the paper's operator family — only need dense 1x1
convolutions and depthwise kxk convolutions, both of which are covered by
``Conv2d(groups=...)``. The implementation lowers the whole convolution
to one batched GEMM: the input is unfolded once with im2col, the columns
are viewed as ``(N, g, C_g*k*k, OH*OW)``, and a single broadcasted
``np.matmul`` against the ``(g, Cout_g, C_g*k*k)`` weight view covers
all groups — no per-group Python loop, which matters enormously for
depthwise convs where ``g == C``. Column buffers are reused across steps
via a per-layer :class:`~repro.nn.functional.Im2colWorkspace`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import Im2colWorkspace, col2im, im2col
from repro.nn.initializers import kaiming_normal, zeros_init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """Grouped 2-D convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; both must be divisible by ``groups``.
    kernel_size:
        Square kernel side length.
    stride, padding:
        Uniform spatial stride / zero padding.
    groups:
        ``1`` for a dense conv, ``in_channels`` for depthwise.
    bias:
        Whether to add a per-output-channel bias. Convolutions followed
        by batch norm should set this ``False`` (as the paper's blocks do).
    rng:
        Generator for weight initialization; required so supernet
        construction is reproducible.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}->{out_channels}) not divisible "
                f"by groups={groups}"
            )
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("kernel_size/stride must be >=1 and padding >=0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups

        rng = rng if rng is not None else np.random.default_rng(0)
        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_normal(weight_shape, rng), name="weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(
                zeros_init((out_channels,), rng), name="bias", weight_decay=False
            )

        self._cache: Optional[dict] = None
        self._workspace = Im2colWorkspace()
        # 1x1/stride-1/unpadded convs skip im2col entirely (see forward).
        self._is_pointwise = kernel_size == 1 and stride == 1 and padding == 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        g = self.groups
        cin_g = self.in_channels // g
        cout_g = self.out_channels // g
        k = self.kernel_size

        if self._is_pointwise:
            # 1x1 stride-1 unpadded convolutions (the dense convs in every
            # ShuffleNetV2 block) need no unfold at all: the column matrix
            # is the input itself, viewed as (N, C, H*W). Skipping im2col
            # here removes a full activation-sized copy per call and is
            # bit-exact (the GEMM consumes identical values either way).
            cols, out_h, out_w = x.reshape(n, c, h * w), h, w
        else:
            buf = self._workspace.get(
                x.shape, k, self.stride, self.padding, x.dtype
            )
            cols, out_h, out_w = im2col(x, k, self.stride, self.padding, out=buf)
        # One batched GEMM over all groups:
        # (1, g, cout_g, cin_g*k*k) @ (N, g, cin_g*k*k, OHW) -> (N, g, cout_g, OHW)
        colsg = cols.reshape(n, g, cin_g * k * k, out_h * out_w)
        wmat = self.weight.data.reshape(g, cout_g, cin_g * k * k)
        out = np.matmul(wmat[None], colsg)

        out = out.reshape(n, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None, None]

        if self.training:
            self._cache = {"cols": cols, "x_shape": x.shape}
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a cached training forward")
        cols = self._cache["cols"]  # (N, C*k*k, OHW)
        x_shape = self._cache["x_shape"]
        n = grad_out.shape[0]
        g = self.groups
        cin_g = self.in_channels // g
        cout_g = self.out_channels // g
        k = self.kernel_size

        grad_flat = grad_out.reshape(n, self.out_channels, -1)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_flat.sum(axis=(0, 2)))

        gy = grad_flat.reshape(n, g, cout_g, -1)  # (N, g, cout_g, OHW)
        colsg = cols.reshape(n, g, cin_g * k * k, gy.shape[-1])
        # dW: contract positions with one batched GEMM, then sum the
        # batch axis (measurably faster than the equivalent einsum).
        gw = np.matmul(gy, colsg.transpose(0, 1, 3, 2)).sum(axis=0)
        grad_weight = gw.reshape(self.out_channels, cin_g, k, k)
        # dX: backproject columns with one batched GEMM, then fold.
        wmat = self.weight.data.reshape(g, cout_g, cin_g * k * k)
        gcols = np.matmul(wmat.transpose(0, 2, 1)[None], gy)  # (N, g, C_g*k*k, OHW)
        if self._is_pointwise:
            # Inverse of the forward's reshape view: every input position
            # contributes to exactly one column, so folding is a reshape.
            grad_x = gcols.reshape(x_shape)
        else:
            grad_x = col2im(
                gcols.reshape(n, self.in_channels * k * k, -1),
                x_shape,
                k,
                self.stride,
                self.padding,
            )

        self.weight.accumulate_grad(grad_weight)
        self._cache = None
        return grad_x
