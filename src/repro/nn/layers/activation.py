"""Elementwise activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit (used throughout the ShuffleNetV2 blocks)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        self._mask = mask if self.training else None
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a cached training forward")
        grad = grad_out * self._mask
        self._mask = None
        return grad


class Sigmoid(Module):
    """Logistic sigmoid (squeeze-excite gates in MobileNetV3 baselines)."""

    def __init__(self) -> None:
        super().__init__()
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = 1.0 / (1.0 + np.exp(-x))
        self._y = y if self.training else None
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called without a cached training forward")
        grad = grad_out * self._y * (1.0 - self._y)
        self._y = None
        return grad


class HSwish(Module):
    """Hard swish: ``x * relu6(x + 3) / 6`` (MobileNetV3 nonlinearity)."""

    def __init__(self) -> None:
        super().__init__()
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x if self.training else None
        return x * np.clip(x + 3.0, 0.0, 6.0) / 6.0

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called without a cached training forward")
        x = self._x
        grad = np.where(
            x <= -3.0, 0.0, np.where(x >= 3.0, 1.0, (2.0 * x + 3.0) / 6.0)
        )
        self._x = None
        return grad_out * grad


class Identity(Module):
    """Pass-through module (the skip-connect operator's compute path)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
