"""Layer implementations for the numpy NN framework."""
