"""Channel shuffle / split / concat — the ShuffleNetV2 plumbing.

ShuffleNetV2's basic block splits channels in half, transforms one half,
concatenates, then shuffles channels between the two halves so that
information flows across branches. These are pure reindexing operations,
so the backward passes are the inverse permutations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.module import Module


class ChannelShuffle(Module):
    """Interleave channels across ``groups`` groups.

    With ``C`` channels and ``g`` groups, channel ``i`` moves to position
    ``(i % (C/g)) * g + i // (C/g)`` — the transpose-reshape trick from
    ShuffleNet.
    """

    def __init__(self, groups: int = 2):
        super().__init__()
        if groups < 1:
            raise ValueError("groups must be >= 1")
        self.groups = groups

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        g = self.groups
        if c % g:
            raise ValueError(f"channels {c} not divisible by groups {g}")
        return (
            x.reshape(n, g, c // g, h, w)
            .transpose(0, 2, 1, 3, 4)
            .reshape(n, c, h, w)
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = grad_out.shape
        g = self.groups
        # Inverse of the forward permutation: swap the reshape factors.
        return (
            grad_out.reshape(n, c // g, g, h, w)
            .transpose(0, 2, 1, 3, 4)
            .reshape(n, c, h, w)
        )


def channel_split(x: np.ndarray, split: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split an NCHW tensor into ``(x[:, :split], x[:, split:])``."""
    if not 0 < split < x.shape[1]:
        raise ValueError(f"split {split} out of range for {x.shape[1]} channels")
    return x[:, :split], x[:, split:]


def channel_concat(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Concatenate two NCHW tensors along the channel axis."""
    return np.concatenate([a, b], axis=1)
