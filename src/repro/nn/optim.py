"""Optimizers and gradient utilities.

The paper trains with SGD, momentum 0.9, weight decay 3e-5, and gradient
norm clipping at 5 — all implemented here.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float(np.sum(g * g)) for g in grads))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class SGD:
    """Stochastic gradient descent with momentum and decoupled flags.

    Weight decay is applied as L2 regularization added to the gradient
    (classic SGD-WD, as in the paper's recipe), and honours each
    parameter's ``weight_decay`` flag so BN affine parameters and biases
    are exempt.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay and p.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            update = grad + self.momentum * v if self.nesterov else v
            p.data -= self.lr * update

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        velocity = state["velocity"]
        if len(velocity) != len(self._velocity):
            raise ValueError("velocity length mismatch")
        self._velocity = [v.copy() for v in velocity]
