"""Stateless tensor operations shared by the layer implementations.

The convolution layers are built on an ``im2col``/``col2im`` pair: the
input patches are unfolded into a matrix so that the convolution becomes
a single GEMM, which is the only way to get acceptable throughput out of
numpy for supernet training.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int, int]:
    """Unfold NCHW input into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``. ``out`` may supply a
    preallocated ``(N, C, kernel, kernel, out_h, out_w)`` buffer (see
    :class:`Im2colWorkspace`); it is filled and returned reshaped.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    x = pad_nchw(x, padding)

    # Gather kernel*kernel strided views, then reshape into the column
    # matrix. Using slicing (rather than fancy indexing) keeps this
    # memory-bandwidth bound instead of allocation bound.
    shape = (n, c, kernel, kernel, out_h, out_w)
    if out is not None and out.shape == shape and out.dtype == x.dtype:
        cols = out
    else:
        cols = np.empty(shape, dtype=x.dtype)
    for ki in range(kernel):
        hi_end = ki + stride * out_h
        for kj in range(kernel):
            wj_end = kj + stride * out_w
            cols[:, :, ki, kj, :, :] = x[:, :, ki:hi_end:stride, kj:wj_end:stride]
    return cols.reshape(n, c * kernel * kernel, out_h * out_w), out_h, out_w


class Im2colWorkspace:
    """Reusable im2col output buffers keyed on the unfold geometry.

    Supernet training calls the same convolution with the same input
    shape every step; reusing the column buffer avoids a fresh
    ``C * k * k * OH * OW``-sized allocation per call. Each layer owns
    its own workspace (a shared one would alias the column buffers that
    the training forward caches for backward).
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def get(
        self,
        x_shape: Tuple[int, int, int, int],
        kernel: int,
        stride: int,
        padding: int,
        dtype: np.dtype,
    ) -> np.ndarray:
        """Buffer of shape ``(N, C, k, k, out_h, out_w)`` for this geometry."""
        key = (tuple(x_shape), kernel, stride, padding, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            n, c, h, w = x_shape
            out_h = conv_output_size(h, kernel, stride, padding)
            out_w = conv_output_size(w, kernel, stride, padding)
            buf = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=dtype)
            self._buffers[key] = buf
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)


def grouped_conv2d_loop(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int,
    padding: int,
    groups: int,
) -> Tuple[np.ndarray, list]:
    """Per-group Python-loop reference forward (pre-vectorization path).

    Kept as the ground truth for the equivalence tests and the
    ``bench_hotpaths`` speedup baseline. Returns ``(out, cols_per_group)``
    so :func:`grouped_conv2d_loop_backward` can mirror the old training
    cache exactly.
    """
    n = x.shape[0]
    cout, cin_g, k, _ = weight.shape
    cout_g = cout // groups
    out = None
    cols_per_group = []
    out_h = out_w = 0
    for gi in range(groups):
        xg = x[:, gi * cin_g : (gi + 1) * cin_g]
        cols, out_h, out_w = im2col(xg, k, stride, padding)
        wmat = weight[gi * cout_g : (gi + 1) * cout_g].reshape(cout_g, -1)
        yg = np.einsum("oc,ncp->nop", wmat, cols, optimize=True)
        if out is None:
            out = np.empty((n, cout, out_h * out_w), dtype=x.dtype)
        out[:, gi * cout_g : (gi + 1) * cout_g] = yg
        cols_per_group.append(cols)
    return out.reshape(n, cout, out_h, out_w), cols_per_group


def grouped_conv2d_loop_backward(
    grad_out: np.ndarray,
    cols_per_group: list,
    weight: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    stride: int,
    padding: int,
    groups: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group loop reference backward; returns ``(grad_x, grad_weight)``."""
    n = grad_out.shape[0]
    cout, cin_g, k, _ = weight.shape
    cout_g = cout // groups
    grad_flat = grad_out.reshape(n, cout, -1)
    grad_weight = np.zeros_like(weight)
    grad_x = np.empty(x_shape, dtype=grad_out.dtype)
    group_shape = (n, cin_g, x_shape[2], x_shape[3])
    for gi in range(groups):
        gyg = grad_flat[:, gi * cout_g : (gi + 1) * cout_g]
        cols = cols_per_group[gi]
        gw = np.einsum("nop,ncp->oc", gyg, cols, optimize=True)
        grad_weight[gi * cout_g : (gi + 1) * cout_g] = gw.reshape(
            cout_g, cin_g, k, k
        )
        wmat = weight[gi * cout_g : (gi + 1) * cout_g].reshape(cout_g, -1)
        gcols = np.einsum("oc,nop->ncp", wmat, gyg, optimize=True)
        grad_x[:, gi * cin_g : (gi + 1) * cin_g] = col2im(
            gcols, group_shape, k, stride, padding
        )
    return grad_x, grad_weight


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back into an NCHW tensor, summing overlapping patches.

    Inverse-accumulation counterpart of :func:`im2col`, used by the
    convolution backward pass to produce the input gradient.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ki in range(kernel):
        hi_end = ki + stride * out_h
        for kj in range(kernel):
            wj_end = kj + stride * out_w
            padded[:, :, ki:hi_end:stride, kj:wj_end:stride] += cols[:, :, ki, kj, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for one-hot encoding")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
