"""Stateless tensor operations shared by the layer implementations.

The convolution layers are built on an ``im2col``/``col2im`` pair: the
input patches are unfolded into a matrix so that the convolution becomes
a single GEMM, which is the only way to get acceptable throughput out of
numpy for supernet training.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold NCHW input into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    x = pad_nchw(x, padding)

    # Gather kernel*kernel strided views, then reshape into the column
    # matrix. Using slicing (rather than fancy indexing) keeps this
    # memory-bandwidth bound instead of allocation bound.
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ki in range(kernel):
        hi_end = ki + stride * out_h
        for kj in range(kernel):
            wj_end = kj + stride * out_w
            cols[:, :, ki, kj, :, :] = x[:, :, ki:hi_end:stride, kj:wj_end:stride]
    return cols.reshape(n, c * kernel * kernel, out_h * out_w), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back into an NCHW tensor, summing overlapping patches.

    Inverse-accumulation counterpart of :func:`im2col`, used by the
    convolution backward pass to produce the input gradient.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ki in range(kernel):
        hi_end = ki + stride * out_h
        for kj in range(kernel):
            wj_end = kj + stride * out_w
            padded[:, :, ki:hi_end:stride, kj:wj_end:stride] += cols[:, :, ki, kj, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for one-hot encoding")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
