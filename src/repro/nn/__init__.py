"""A from-scratch numpy neural-network framework with manual backprop.

This subpackage is the training substrate for the reproduction: the paper
trains its supernet with PyTorch on ImageNet; here we provide the layers,
losses, optimizers and schedules needed to train the (scaled-down)
HSCoNAS supernet with real gradients on a synthetic task.

Conventions
-----------
* Activations are ``float64`` numpy arrays in ``NCHW`` layout.
* Every :class:`~repro.nn.module.Module` implements ``forward`` and
  ``backward``; ``backward`` consumes the gradient w.r.t. the module
  output and returns the gradient w.r.t. the module input, accumulating
  parameter gradients into ``Parameter.grad`` along the way.
* Layers cache whatever they need for the backward pass during
  ``forward(..., training=True)``; inference calls do not cache.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.initializers import kaiming_normal, kaiming_uniform, xavier_uniform, zeros_init
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.activation import HSwish, Identity, ReLU, Sigmoid
from repro.nn.layers.pool import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.shuffle import ChannelShuffle, channel_concat, channel_split
from repro.nn.layers.mask import ChannelMask
from repro.nn.inference import assert_no_eval_caches, eval_no_grad, find_eval_caches
from repro.nn.quantized import (
    QuantizedTensor,
    kendall_tau,
    quantize_activation,
    quantize_weight,
    ranking_fidelity,
    symmetric_scales,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD, clip_grad_norm
from repro.nn.schedule import ConstantSchedule, CosineSchedule, WarmupCosineSchedule

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros_init",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "HSwish",
    "Sigmoid",
    "Identity",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ChannelShuffle",
    "channel_split",
    "channel_concat",
    "ChannelMask",
    "eval_no_grad",
    "assert_no_eval_caches",
    "find_eval_caches",
    "QuantizedTensor",
    "symmetric_scales",
    "quantize_weight",
    "quantize_activation",
    "kendall_tau",
    "ranking_fidelity",
    "CrossEntropyLoss",
    "SGD",
    "clip_grad_norm",
    "ConstantSchedule",
    "CosineSchedule",
    "WarmupCosineSchedule",
]
