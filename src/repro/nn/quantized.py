"""Int8 evaluation kernels and ranking-fidelity checks.

The search-time fast path (see ``docs/performance.md``) can optionally
run eval forwards on an int8 grid: weights get one symmetric scale per
output channel (the same scales :mod:`repro.deploy.quantize` uses for
deployment fake-quantization — :func:`symmetric_scales` is the single
source of truth both import), activations get one dynamic per-tensor
scale per call, and the GEMM contracts the integer-grid values.

numpy has no int8 BLAS: ``np.matmul`` on integer dtypes falls back to a
slow non-BLAS loop. The kernels therefore store the integer-grid values
in ``float32`` and use the float32 BLAS GEMM (sgemm), which on this
workload is ~2x the fp64 path by halving memory traffic. float32
accumulation is *exact* as long as every partial sum stays below
``2**24``: with int8 products bounded by ``127**2`` that holds for
reduction depths up to ~1000, far above the ``C_in/groups * k * k``
depths in the ShuffleNetV2 operator family. The result is then scaled
back to float64 output.

Int8 eval is an approximation of the fp32 forward, so it ships with a
gate: :func:`ranking_fidelity` compares fast scores against reference
scores and passes only if Kendall's tau-b >= ``min_tau`` and the top-K
sets agree. Search code must check the gate before trusting int8
rankings (the bench and tests do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

INT8_EXACT_ACCUM_DEPTH = (2**24) // (127 * 127)  # 1040 columns


def symmetric_scales(
    values: np.ndarray, bits: int = 8, per_channel_axis: int = -1
) -> np.ndarray:
    """Symmetric quantization scales for one tensor.

    ``per_channel_axis >= 0`` returns one scale per slice along that axis
    (the output-channel axis for conv/linear weights); ``-1`` returns a
    single per-tensor scale as a 0-d array. Zero slices get scale 1.0 so
    dequantization is well defined.
    """
    if bits < 2 or bits > 16:
        raise ValueError("bits must be in [2, 16]")
    qmax = 2 ** (bits - 1) - 1
    if per_channel_axis >= 0:
        moved = np.moveaxis(values, per_channel_axis, 0)
        flat = moved.reshape(moved.shape[0], -1)
        scales = np.abs(flat).max(axis=1) / qmax
        scales[scales == 0.0] = 1.0
        return scales
    scale = np.abs(values).max() / qmax
    return np.asarray(1.0 if scale == 0.0 else scale, dtype=np.float64)


@dataclass(frozen=True)
class QuantizedTensor:
    """Integer-grid values (stored as float32 for BLAS) plus their scale.

    ``q * scale`` (with ``scale`` broadcast along the channel axis for
    per-channel tensors) recovers the fake-quantized float value — the
    exact tensor :func:`repro.deploy.quantize.fake_quantize_array` would
    produce from the same input.
    """

    q: np.ndarray
    scale: Union[np.ndarray, float]
    bits: int = 8

    def dequantize(self) -> np.ndarray:
        scale = np.asarray(self.scale, dtype=np.float64)
        if scale.ndim == 1:  # per-output-channel weights
            shape = [1] * self.q.ndim
            shape[0] = scale.shape[0]
            scale = scale.reshape(shape)
        return self.q.astype(np.float64) * scale


def quantize_weight(weight: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Per-output-channel symmetric quantization of a weight tensor.

    Axis 0 is the output-channel axis for both conv ``(Cout, Cin_g, k,
    k)`` and linear ``(out, in)`` weights. Done once per candidate-free
    layer and cached — weights do not change during search evaluation.
    """
    scales = symmetric_scales(weight, bits=bits, per_channel_axis=0)
    shape = [1] * weight.ndim
    shape[0] = scales.shape[0]
    q = np.round(weight / scales.reshape(shape)).astype(np.float32)
    return QuantizedTensor(q=q, scale=scales, bits=bits)


def quantize_activation(x: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Dynamic per-tensor symmetric quantization of an activation."""
    qmax = 2 ** (bits - 1) - 1
    scale = float(symmetric_scales(x, bits=bits, per_channel_axis=-1))
    q = np.clip(np.round(x / scale), -qmax, qmax).astype(np.float32, copy=False)
    return QuantizedTensor(q=q, scale=scale, bits=bits)


def int8_conv_gemm(
    cols: np.ndarray,
    qweight: QuantizedTensor,
    groups: int,
    bits: int = 8,
) -> np.ndarray:
    """Grouped conv GEMM on the int8 grid.

    ``cols`` is the im2col matrix ``(N, C_g*k*k*g, OHW)`` the float path
    would feed to ``np.matmul``; ``qweight`` is the cached
    :func:`quantize_weight` of the conv weight ``(Cout, Cin_g, k, k)``.
    Returns ``(N, g, cout_g, OHW)`` in float64, already rescaled.
    """
    n = cols.shape[0]
    cout = qweight.q.shape[0]
    cout_g = cout // groups
    ckk = int(qweight.q[0].size)  # cin_g * k * k
    if ckk > INT8_EXACT_ACCUM_DEPTH:
        raise ValueError(
            f"reduction depth {ckk} exceeds exact float32 accumulation "
            f"bound {INT8_EXACT_ACCUM_DEPTH}"
        )
    qx = quantize_activation(cols, bits=bits)
    qcols = qx.q.reshape(n, groups, ckk, -1)
    qw = qweight.q.reshape(groups, cout_g, ckk)
    acc = np.matmul(qw[None], qcols)  # float32 sgemm over integer grids
    wscale = np.asarray(qweight.scale).reshape(groups, cout_g)
    return acc.astype(np.float64) * (qx.scale * wscale)[None, :, :, None]


def int8_linear_gemm(
    x: np.ndarray, qweight: QuantizedTensor, bits: int = 8
) -> np.ndarray:
    """Linear GEMM ``x @ W.T`` on the int8 grid, rescaled to float64."""
    if qweight.q.shape[1] > INT8_EXACT_ACCUM_DEPTH:
        raise ValueError(
            f"reduction depth {qweight.q.shape[1]} exceeds exact float32 "
            f"accumulation bound {INT8_EXACT_ACCUM_DEPTH}"
        )
    qx = quantize_activation(x, bits=bits)
    acc = qx.q @ qweight.q.T
    return acc.astype(np.float64) * (qx.scale * np.asarray(qweight.scale))[None, :]


# -- ranking fidelity ---------------------------------------------------------


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Exact Kendall tau-b rank correlation (ties handled), in numpy.

    O(n^2) pairwise comparison — fine for the candidate-batch sizes
    (N=100 per Eq.-4 subspace) this gate runs on; avoids a scipy
    dependency the container may not carry.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length 1-D sequences")
    if a.size < 2:
        raise ValueError("need at least 2 items to rank")
    da = np.sign(a[:, None] - a[None, :])
    db = np.sign(b[:, None] - b[None, :])
    iu = np.triu_indices(a.size, k=1)
    da, db = da[iu], db[iu]
    concordant_minus_discordant = float(np.sum(da * db))
    ties_a = float(np.sum(da == 0))
    ties_b = float(np.sum(db == 0))
    n_pairs = float(da.size)
    denom = np.sqrt((n_pairs - ties_a) * (n_pairs - ties_b))
    if denom == 0.0:
        return 0.0
    return concordant_minus_discordant / denom


def ranking_fidelity(
    reference: Sequence[float],
    fast: Sequence[float],
    top_k: int = 10,
    min_tau: float = 0.99,
) -> Dict[str, object]:
    """Gate an approximate scorer against a reference scorer.

    Passes only if Kendall's tau-b >= ``min_tau`` AND the top-``top_k``
    candidate *sets* are identical (order within the set may differ —
    search keeps the top-K pool, it does not care about order inside it).
    """
    reference = np.asarray(reference, dtype=np.float64)
    fast = np.asarray(fast, dtype=np.float64)
    if reference.shape != fast.shape:
        raise ValueError("score arrays must have equal shape")
    if not 1 <= top_k <= reference.size:
        raise ValueError(f"top_k={top_k} out of range for {reference.size} scores")
    tau = kendall_tau(reference, fast)
    ref_top = set(np.argsort(-reference, kind="stable")[:top_k].tolist())
    fast_top = set(np.argsort(-fast, kind="stable")[:top_k].tolist())
    overlap = len(ref_top & fast_top) / top_k
    return {
        "kendall_tau": tau,
        "top_k": top_k,
        "top_k_overlap": overlap,
        "min_tau": min_tau,
        "passed": bool(tau >= min_tau and overlap == 1.0),
    }
