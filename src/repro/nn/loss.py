"""Loss functions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy with optional label smoothing.

    Usage: ``loss = criterion.forward(logits, labels)`` followed by
    ``grad_logits = criterion.backward()``. The gradient is averaged
    over the batch, matching the mean-reduction convention.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache: Optional[dict] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, K), got {logits.shape}")
        n, k = logits.shape
        targets = one_hot(labels, k)
        if self.label_smoothing > 0.0:
            targets = targets * (1.0 - self.label_smoothing) + self.label_smoothing / k
        logp = log_softmax(logits, axis=1)
        loss = float(-(targets * logp).sum() / n)
        self._cache = {"logits": logits, "targets": targets}
        return loss

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logits = self._cache["logits"]
        targets = self._cache["targets"]
        n = logits.shape[0]
        grad = (softmax(logits, axis=1) - targets) / n
        self._cache = None
        return grad

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)
