"""No-grad evaluation helpers for the numpy NN framework.

The framework has no autograd tape, so "no-grad" here means something
concrete: in eval mode every layer's forward must skip the allocations it
only needs for backprop (im2col column caches, saved inputs/outputs,
dropout-style masks). :func:`eval_no_grad` is the sanctioned way to enter
that mode temporarily — it snapshots each module's ``training`` flag,
switches the tree to ``eval()``, and restores the exact per-module flags
on exit (a plain ``train()`` would clobber mixed-mode trees).

:func:`assert_no_eval_caches` is the audit companion: after an eval-mode
forward it walks the module tree and fails loudly if any layer retained a
per-call cache. The test suite runs it over every layer type and the full
supernet so a future layer cannot silently regress the fast path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Tuple

from repro.nn.module import Module

#: Attribute names layers use for per-call backward caches. Persistent
#: per-layer state (im2col *workspaces*, channel masks, BN running
#: statistics) is deliberately absent: those are reused across calls and
#: are exactly what the fast path wants to keep warm.
CACHE_ATTRS: Tuple[str, ...] = (
    "_cache",
    "_x",
    "_y",
    "_mask",
    "_x_shape",
    "_left_channels",
)


@contextmanager
def eval_no_grad(module: Module) -> Iterator[Module]:
    """Temporarily put ``module`` (and descendants) in eval mode.

    Restores each module's individual ``training`` flag afterwards, so a
    tree with mixed modes round-trips exactly. Usage::

        with eval_no_grad(supernet):
            logits = supernet(images)
    """
    modules = list(module.modules())
    saved = [m.training for m in modules]
    module.eval()
    try:
        yield module
    finally:
        for m, flag in zip(modules, saved):
            m.training = flag


def find_eval_caches(module: Module) -> List[str]:
    """Return ``"ClassName.attr"`` for every retained per-call cache.

    Only attributes named in :data:`CACHE_ATTRS` are inspected, and only
    non-``None`` values count: layers signal "nothing retained" by
    resetting their cache attributes to ``None`` on eval forwards.
    """
    offenders: List[str] = []
    for m in module.modules():
        for attr in CACHE_ATTRS:
            if getattr(m, attr, None) is not None:
                offenders.append(f"{type(m).__name__}.{attr}")
    return offenders


def assert_no_eval_caches(module: Module) -> None:
    """Raise ``AssertionError`` if any layer kept a backward cache.

    Call this right after an eval-mode forward; a non-empty result means
    some layer allocates backward state even when ``training`` is False,
    which defeats the no-grad fast path's memory guarantees.
    """
    offenders = find_eval_caches(module)
    if offenders:
        raise AssertionError(
            "eval-mode forward retained backward caches: "
            + ", ".join(sorted(set(offenders)))
        )
