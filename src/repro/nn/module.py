"""Module and parameter abstractions for the numpy NN framework.

The design intentionally avoids a tape-based autograd: each layer knows
how to backpropagate through itself, which keeps the framework small,
debuggable, and fast enough for the scaled-down supernet training used
in this reproduction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes
    ----------
    data:
        The parameter value, updated in place by optimizers.
    grad:
        Accumulated gradient of the loss w.r.t. ``data``; ``None`` until
        a backward pass touches the parameter.
    name:
        Optional human-readable identifier (used in state dicts).
    weight_decay:
        Whether L2 regularization applies to this parameter. Following
        common practice (and the paper's training recipe), weight decay
        is disabled for batch-norm affine parameters and biases.
    """

    def __init__(self, data: np.ndarray, name: str = "", weight_decay: bool = True):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.weight_decay = weight_decay

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient (creating it if absent)."""
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64)
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` and :meth:`backward`. Containers
    register child modules by assigning them to attributes; parameter and
    child discovery walks ``__dict__`` so no explicit registration call
    is required.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward / backward ------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` (dL/d output) and return dL/d input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- mode --------------------------------------------------------------

    def train(self) -> "Module":
        """Put this module and all children into training mode."""
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Module":
        """Put this module and all children into inference mode."""
        self.training = False
        for child in self.children():
            child.eval()
        return self

    # -- discovery ---------------------------------------------------------

    def children(self) -> Iterator["Module"]:
        """Yield direct child modules (attribute order)."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self.children():
            yield from child.modules()

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters in this module and its descendants."""
        for module in self.modules():
            for value in module.__dict__.values():
                if isinstance(value, Parameter):
                    yield value

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, stable across calls."""
        for attr, value in self.__dict__.items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{attr}", value)
        for attr, value in self.__dict__.items():
            if isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{attr}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{prefix}{attr}.{i}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- (de)serialization ---------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from :meth:`state_dict` output.

        With ``strict=True`` every key must match in name and shape.
        With ``strict=False`` missing/mismatched keys are skipped, which
        supports the paper's weight-inheritance between a supernet and
        its channel-scaled subnets.
        """
        params = dict(self.named_parameters())
        if strict:
            missing = set(params) - set(state)
            extra = set(state) - set(params)
            if missing or extra:
                raise KeyError(
                    f"state dict mismatch: missing={sorted(missing)} extra={sorted(extra)}"
                )
        for name, value in state.items():
            if name not in params:
                continue
            if params[name].data.shape != value.shape:
                if strict:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                continue
            params[name].data = value.copy()


class Sequential(Module):
    """Compose modules in order; backward runs them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out
