"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
supernet construction is reproducible end to end — a requirement for the
paper's weight-sharing evaluation, where subnets inherit supernet weights
and must see identical values across runs with the same seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for linear and conv weight shapes.

    Linear weights are ``(out, in)``; conv weights are
    ``(out, in, kh, kw)`` where the receptive field multiplies both fans.
    """
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_ch, in_ch, kh, kw = shape
        receptive = kh * kw
        return in_ch * receptive, out_ch * receptive
    raise ValueError(f"unsupported weight shape for fan computation: {shape}")


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization (gain for ReLU nonlinearities)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform initialization."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization (for linear classifier heads)."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def zeros_init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (biases, BN shift)."""
    del rng  # determinism by construction
    return np.zeros(shape, dtype=np.float64)
