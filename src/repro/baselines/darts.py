"""DARTS (Liu et al., ICLR 2019) — the hardware-agnostic comparator.

The DARTS ImageNet network stacks 14 searched cells (reduction cells at
1/3 and 2/3 depth) on a stride-4 stem, with 48 initial channels. Each
cell launches ~18 kernels, so the network issues an order of magnitude
more kernels than the mobile baselines at comparable FLOPs — which is
exactly why Table I shows it far slower on every device despite decent
accuracy, and why HSCoNAS's hardware-aware search wins.
"""

from __future__ import annotations

from repro.baselines.blocks import NetBuilder

_NUM_CELLS = 14
_INIT_CHANNELS = 48


def build(input_size: int = 224) -> NetBuilder:
    """Construct the DARTS-V2 ImageNet network."""
    net = NetBuilder(input_size=input_size, input_channels=3)
    # ImageNet stem: two stride-2 3x3 convs (C/2 then C), then one more
    # stride-2 conv — brings 224 down to 28 before the first cell.
    net.conv_bn(_INIT_CHANNELS // 2, k=3, stride=2)
    net.conv_bn(_INIT_CHANNELS, k=3, stride=2)
    net.conv_bn(_INIT_CHANNELS, k=3, stride=2)
    channels = _INIT_CHANNELS
    reduction_at = {_NUM_CELLS // 3, 2 * _NUM_CELLS // 3}
    for cell in range(_NUM_CELLS):
        reduction = cell in reduction_at
        if reduction:
            channels *= 2
        net.darts_cell(channels, reduction=reduction)
    net.fc_head(num_classes=1000)
    return net
