"""Baseline models from the paper's Table I.

Every comparator — MobileNetV2/V3, ShuffleNetV2, DARTS, MnasNet-A1,
FBNet-A/B/C, ProxylessNAS-GPU/CPU/Mobile — is specified here as a
layer-level graph of primitive kernels, so the *same* simulated devices
that time HSCoNets also time the baselines; who-is-faster-than-whom is
produced by the hardware model, not copied from the paper.

Accuracy numbers for baselines are the published literature values
(``zoo.published``) — exactly the paper's own methodology: its Table I
quotes error rates from the cited papers and only re-measures latency.
"""

from repro.baselines.blocks import NetBuilder
from repro.baselines.zoo import (
    BaselineModel,
    PublishedStats,
    all_baselines,
    get_baseline,
)

__all__ = [
    "NetBuilder",
    "BaselineModel",
    "PublishedStats",
    "all_baselines",
    "get_baseline",
]
