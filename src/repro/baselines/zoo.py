"""Registry of Table-I baselines with their published reference numbers.

``PublishedStats`` records what the paper's Table I reports: top-1/top-5
error (quoted from the literature) and the latencies the authors
measured on their GPU / CPU / edge testbed. The reproduction times every
model on the *simulated* devices and compares shapes against these
references in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines import (
    darts,
    fbnet,
    mnasnet,
    mobilenet_v2,
    mobilenet_v3,
    proxylessnas,
    shufflenet_v2,
)
from repro.baselines.blocks import NetBuilder


@dataclass(frozen=True)
class PublishedStats:
    """Numbers from the paper's Table I (errors quoted from literature)."""

    top1_error: float
    top5_error: Optional[float]
    latency_gpu_ms: float
    latency_cpu_ms: float
    latency_edge_ms: float

    def latency_ms(self, device_key: str) -> float:
        try:
            return {
                "gpu": self.latency_gpu_ms,
                "cpu": self.latency_cpu_ms,
                "edge": self.latency_edge_ms,
            }[device_key]
        except KeyError:
            raise KeyError(f"unknown device {device_key!r}") from None


@dataclass(frozen=True)
class BaselineModel:
    """A named baseline: how to build it + its published reference stats."""

    name: str
    group: str  # "manual" or "nas"
    builder: Callable[[], NetBuilder]
    published: PublishedStats

    def build(self) -> NetBuilder:
        return self.builder()


_BASELINES: Tuple[BaselineModel, ...] = (
    BaselineModel(
        "MobileNetV2 1.0x", "manual",
        lambda: mobilenet_v2.build(width=1.0),
        PublishedStats(28.0, None, 11.5, 25.2, 61.9),
    ),
    BaselineModel(
        "ShuffleNetV2 1.5x", "manual",
        lambda: shufflenet_v2.build(width=1.5),
        PublishedStats(27.4, None, 10.5, 34.3, 65.9),
    ),
    BaselineModel(
        "MobileNetV3 (large)", "manual",
        mobilenet_v3.build,
        PublishedStats(24.8, None, 12.2, 31.8, 61.1),
    ),
    BaselineModel(
        "DARTS", "nas",
        darts.build,
        PublishedStats(26.7, 8.7, 17.3, 81.4, 68.7),
    ),
    BaselineModel(
        "MnasNet-A1", "nas",
        mnasnet.build,
        PublishedStats(24.8, 7.5, 10.9, 26.4, 51.8),
    ),
    BaselineModel(
        "FBNet-A", "nas",
        lambda: fbnet.build("a"),
        PublishedStats(27.0, 9.1, 10.5, 21.6, 48.6),
    ),
    BaselineModel(
        "FBNet-B", "nas",
        lambda: fbnet.build("b"),
        PublishedStats(25.9, 8.2, 13.6, 25.5, 57.1),
    ),
    BaselineModel(
        "FBNet-C", "nas",
        lambda: fbnet.build("c"),
        PublishedStats(25.1, 7.7, 15.5, 28.7, 66.4),
    ),
    BaselineModel(
        "ProxylessNAS-GPU", "nas",
        lambda: proxylessnas.build("gpu"),
        PublishedStats(24.9, 7.5, 12.0, 24.5, 57.4),
    ),
    BaselineModel(
        "ProxylessNAS-CPU", "nas",
        lambda: proxylessnas.build("cpu"),
        PublishedStats(24.7, None, 16.1, 29.6, 70.1),
    ),
    BaselineModel(
        "ProxylessNAS-Mobile", "nas",
        lambda: proxylessnas.build("mobile"),
        PublishedStats(25.4, 7.8, 11.5, 26.4, 53.5),
    ),
)


def all_baselines() -> List[BaselineModel]:
    """All Table-I comparators, in the table's order."""
    return list(_BASELINES)


def get_baseline(name: str) -> BaselineModel:
    """Look up one baseline by its Table-I row name."""
    for model in _BASELINES:
        if model.name == name:
            return model
    raise KeyError(f"unknown baseline {name!r}")


def baselines_by_group() -> Dict[str, List[BaselineModel]]:
    """Baselines grouped as in Table I (manual vs. NAS)."""
    groups: Dict[str, List[BaselineModel]] = {"manual": [], "nas": []}
    for model in _BASELINES:
        groups[model.group].append(model)
    return groups
