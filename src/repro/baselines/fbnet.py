"""FBNet-A/B/C (Wu et al., CVPR 2019).

FBNets share a fixed macro-skeleton (stem 16 -> stages
[16, 24, 32, 64, 112, 184, 352]) and differ in the per-block choice of
expansion ratio, kernel size, and skip. The block tables below follow
the searched architectures reported in the FBNet paper (Fig. 5); minor
per-block details are approximations, validated against the published
MAC counts (A: 249M, B: 295M, C: 375M) by the test suite.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.baselines.blocks import NetBuilder

# Each block: (expansion, kernel, out channels, stride); expansion 0 = skip.
_Block = Tuple[float, int, int, int]

_FBNET_A: Tuple[_Block, ...] = (
    (1, 3, 16, 1),
    (6, 3, 24, 2), (1, 3, 24, 1), (0, 3, 24, 1), (0, 3, 24, 1),
    (6, 5, 32, 2), (3, 3, 32, 1), (0, 3, 32, 1), (0, 3, 32, 1),
    (6, 5, 64, 2), (3, 3, 64, 1), (3, 3, 64, 1), (3, 5, 64, 1),
    (6, 3, 112, 1), (3, 3, 112, 1), (3, 3, 112, 1), (3, 5, 112, 1),
    (6, 5, 184, 2), (3, 5, 184, 1), (3, 5, 184, 1), (3, 5, 184, 1),
    (6, 3, 352, 1),
)

_FBNET_B: Tuple[_Block, ...] = (
    (1, 3, 16, 1),
    (6, 3, 24, 2), (1, 3, 24, 1), (1, 3, 24, 1), (1, 3, 24, 1),
    (6, 5, 32, 2), (3, 5, 32, 1), (3, 3, 32, 1), (3, 5, 32, 1),
    (6, 5, 64, 2), (3, 5, 64, 1), (3, 5, 64, 1), (3, 3, 64, 1),
    (6, 5, 112, 1), (3, 3, 112, 1), (3, 5, 112, 1), (3, 5, 112, 1),
    (6, 5, 184, 2), (3, 5, 184, 1), (6, 5, 184, 1), (6, 3, 184, 1),
    (6, 3, 352, 1),
)

_FBNET_C: Tuple[_Block, ...] = (
    (1, 3, 16, 1),
    (6, 3, 24, 2), (1, 3, 24, 1), (1, 3, 24, 1), (1, 3, 24, 1),
    (6, 5, 32, 2), (3, 5, 32, 1), (6, 3, 32, 1), (6, 3, 32, 1),
    (6, 5, 64, 2), (3, 5, 64, 1), (6, 3, 64, 1), (6, 5, 64, 1),
    (6, 5, 112, 1), (6, 5, 112, 1), (6, 5, 112, 1), (6, 3, 112, 1),
    (6, 5, 184, 2), (6, 5, 184, 1), (6, 5, 184, 1), (6, 5, 184, 1),
    (6, 3, 352, 1),
)

_VARIANTS = {"a": _FBNET_A, "b": _FBNET_B, "c": _FBNET_C}


def _build_from_blocks(blocks: Sequence[_Block], input_size: int) -> NetBuilder:
    net = NetBuilder(input_size=input_size, input_channels=3)
    net.conv_bn(16, k=3, stride=2)
    for expansion, k, cout, stride in blocks:
        if expansion == 0:
            # Skipped block: identity, no kernels launched.
            continue
        net.mbconv(cout, expansion=expansion, k=k, stride=stride)
    net.head(1504, num_classes=1000)
    return net


def build(variant: str = "c", input_size: int = 224) -> NetBuilder:
    """Construct FBNet-A, -B, or -C."""
    variant = variant.lower()
    if variant not in _VARIANTS:
        raise ValueError(f"variant {variant!r} not in {sorted(_VARIANTS)}")
    return _build_from_blocks(_VARIANTS[variant], input_size)
