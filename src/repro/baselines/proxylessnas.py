"""ProxylessNAS-GPU/CPU/Mobile (Cai et al., ICLR 2019).

The three variants share the MBConv skeleton and differ in the
specialization the paper highlights: the GPU net is *shallow and wide*
with large kernels (GPUs prefer few big kernels), the CPU net is *deep
and narrow* with 3x3 kernels, and the Mobile net sits in between. Block
tables follow the searched architectures in the ProxylessNAS paper
(Fig. 5), with per-block details approximated and validated against the
published MAC counts by the test suite.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.baselines.blocks import NetBuilder

# Each block: (expansion, kernel, out channels, stride); expansion 0 = skip.
_Block = Tuple[float, int, int, int]

_GPU: Tuple[_Block, ...] = (
    (1, 3, 24, 1),
    (5, 5, 32, 2), (0, 3, 32, 1), (0, 3, 32, 1), (0, 3, 32, 1),
    (5, 7, 56, 2), (0, 3, 56, 1), (0, 3, 56, 1), (0, 3, 56, 1),
    (6, 7, 112, 2), (3, 5, 112, 1), (0, 3, 112, 1), (0, 3, 112, 1),
    (6, 5, 128, 1), (3, 5, 128, 1), (0, 3, 128, 1), (3, 5, 128, 1),
    (6, 7, 256, 2), (6, 7, 256, 1), (6, 7, 256, 1), (6, 5, 256, 1),
    (6, 7, 432, 1),
)

_CPU: Tuple[_Block, ...] = (
    (1, 3, 24, 1),
    (6, 3, 32, 2), (3, 3, 32, 1), (3, 3, 32, 1), (3, 3, 32, 1),
    (6, 3, 48, 2), (3, 3, 48, 1), (3, 3, 48, 1), (3, 3, 48, 1),
    (6, 3, 88, 2), (3, 3, 88, 1), (3, 3, 88, 1), (3, 3, 88, 1),
    (6, 5, 104, 1), (3, 3, 104, 1), (3, 3, 104, 1), (3, 3, 104, 1),
    (6, 5, 216, 2), (3, 5, 216, 1), (3, 5, 216, 1), (3, 5, 216, 1),
    (6, 5, 360, 1),
)

_MOBILE: Tuple[_Block, ...] = (
    (1, 3, 16, 1),
    (6, 5, 32, 2), (3, 3, 32, 1), (0, 3, 32, 1), (0, 3, 32, 1),
    (6, 7, 40, 2), (3, 3, 40, 1), (3, 5, 40, 1), (3, 5, 40, 1),
    (6, 7, 80, 2), (3, 5, 80, 1), (3, 5, 80, 1), (3, 5, 80, 1),
    (6, 5, 96, 1), (3, 5, 96, 1), (3, 5, 96, 1), (3, 5, 96, 1),
    (6, 7, 192, 2), (6, 7, 192, 1), (3, 7, 192, 1), (3, 7, 192, 1),
    (6, 7, 320, 1),
)

_VARIANTS = {"gpu": _GPU, "cpu": _CPU, "mobile": _MOBILE}


def _build_from_blocks(blocks: Sequence[_Block], input_size: int,
                       stem: int, head: int) -> NetBuilder:
    net = NetBuilder(input_size=input_size, input_channels=3)
    net.conv_bn(stem, k=3, stride=2)
    for expansion, k, cout, stride in blocks:
        if expansion == 0:
            continue
        net.mbconv(cout, expansion=expansion, k=k, stride=stride)
    net.head(head, num_classes=1000)
    return net


def build(variant: str = "mobile", input_size: int = 224) -> NetBuilder:
    """Construct ProxylessNAS-GPU, -CPU, or -Mobile."""
    variant = variant.lower()
    if variant not in _VARIANTS:
        raise ValueError(f"variant {variant!r} not in {sorted(_VARIANTS)}")
    stem = 40 if variant == "gpu" else 32
    head = 1728 if variant == "gpu" else 1280
    return _build_from_blocks(_VARIANTS[variant], input_size, stem, head)
