"""ShuffleNetV2 (Ma et al., ECCV 2018)."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines.blocks import NetBuilder

# Width multiplier (in tenths, so keys stay exact integers) ->
# (stage channels, head channels) — Table 5 of the paper.
_WIDTH_DECILES: Dict[int, Tuple[Tuple[int, int, int], int]] = {
    5: ((48, 96, 192), 1024),
    10: ((116, 232, 464), 1024),
    15: ((176, 352, 704), 1024),
    20: ((244, 488, 976), 2048),
}

_STAGE_REPEATS = (4, 8, 4)


def build(width: float = 1.5, input_size: int = 224) -> NetBuilder:
    """Construct ShuffleNetV2 at one of the published width multipliers."""
    decile = int(round(width * 10))
    if decile not in _WIDTH_DECILES or abs(width * 10 - decile) > 1e-9:
        known = [d / 10 for d in sorted(_WIDTH_DECILES)]
        raise ValueError(f"width {width} not in {known}")
    stage_channels, head = _WIDTH_DECILES[decile]
    net = NetBuilder(input_size=input_size, input_channels=3)
    net.conv_bn(24, k=3, stride=2)
    net.maxpool(k=3, stride=2)
    for channels, repeats in zip(stage_channels, _STAGE_REPEATS):
        for i in range(repeats):
            net.shuffle_unit(channels, k=3, stride=2 if i == 0 else 1)
    net.head(head, num_classes=1000)
    return net
