"""MobileNetV3-Large (Howard et al., ICCV 2019)."""

from __future__ import annotations

from repro.baselines.blocks import NetBuilder

# (kernel, expanded width, out channels, SE, stride) — Table 1 of the paper.
_LARGE = (
    (3, 16, 16, False, 1),
    (3, 64, 24, False, 2),
    (3, 72, 24, False, 1),
    (5, 72, 40, True, 2),
    (5, 120, 40, True, 1),
    (5, 120, 40, True, 1),
    (3, 240, 80, False, 2),
    (3, 200, 80, False, 1),
    (3, 184, 80, False, 1),
    (3, 184, 80, False, 1),
    (3, 480, 112, True, 1),
    (3, 672, 112, True, 1),
    (5, 672, 160, True, 2),
    (5, 960, 160, True, 1),
    (5, 960, 160, True, 1),
)


def build(input_size: int = 224) -> NetBuilder:
    """Construct MobileNetV3-Large 1.0x."""
    net = NetBuilder(input_size=input_size, input_channels=3)
    net.conv_bn(16, k=3, stride=2)
    for k, exp, cout, se, stride in _LARGE:
        net.mbconv(cout, expansion=exp / net.channels, k=k, stride=stride,
                   se=se, mid=exp)
    net.conv_bn(960, k=1, stride=1)
    net.head_pooled(1280, num_classes=1000)
    return net
