"""MobileNetV2 (Sandler et al., CVPR 2018)."""

from __future__ import annotations

from repro.baselines.blocks import NetBuilder

# (expansion t, channels c, repeats n, first stride s) — Table 2 of the paper.
_SETTING = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _scale(channels: int, multiplier: float) -> int:
    """Width-multiplier rounding to multiples of 8 (the reference impl)."""
    scaled = channels * multiplier
    rounded = max(8, int(scaled + 4) // 8 * 8)
    if rounded < 0.9 * scaled:
        rounded += 8
    return rounded


def build(width: float = 1.0, input_size: int = 224) -> NetBuilder:
    """Construct MobileNetV2 at a given width multiplier."""
    net = NetBuilder(input_size=input_size, input_channels=3)
    net.conv_bn(_scale(32, width), k=3, stride=2)
    for t, c, n, s in _SETTING:
        cout = _scale(c, width)
        for i in range(n):
            net.mbconv(cout, expansion=t, k=3, stride=s if i == 0 else 1)
    head = max(1280, _scale(1280, width))
    net.head(head, num_classes=1000)
    return net
