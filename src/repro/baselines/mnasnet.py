"""MnasNet-A1 (Tan et al., CVPR 2019)."""

from __future__ import annotations

from repro.baselines.blocks import NetBuilder

# (expansion, channels, repeats, first stride, kernel, SE) — Fig. 7 of the paper.
_SETTING = (
    (6, 24, 2, 2, 3, False),
    (3, 40, 3, 2, 5, True),
    (6, 80, 4, 2, 3, False),
    (6, 112, 2, 1, 3, True),
    (6, 160, 3, 2, 5, True),
    (6, 320, 1, 1, 3, False),
)


def build(input_size: int = 224) -> NetBuilder:
    """Construct MnasNet-A1."""
    net = NetBuilder(input_size=input_size, input_channels=3)
    net.conv_bn(32, k=3, stride=2)
    # SepConv block: dw3x3 + linear 1x1 down to 16 channels.
    net.mbconv(16, expansion=1, k=3, stride=1)
    for t, c, n, s, k, se in _SETTING:
        for i in range(n):
            net.mbconv(c, expansion=t, k=k, stride=s if i == 0 else 1, se=se)
    net.head(1280, num_classes=1000)
    return net
