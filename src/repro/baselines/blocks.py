"""Primitive-level building blocks for baseline model specification.

:class:`NetBuilder` walks a network definition front to back, tracking
the current spatial size and channel count, and emits primitive kernels
grouped by layer — the representation the device simulator executes.
All blocks follow the published architectures' structure (expansion
1x1 -> depthwise kxk -> projection 1x1 for MBConv, branch structure for
ShuffleNetV2, factorized separable convs for DARTS cells).
"""

from __future__ import annotations

from typing import List, Optional

from repro.space.operators import Primitive

_DTYPE_BYTES = 4


def _conv(name: str, cin: int, cout: int, k: int, h_in: int, stride: int,
          groups: int = 1) -> Primitive:
    h_out = h_in // stride
    flops = h_out * h_out * (cin // groups) * cout * k * k
    weights = (cin // groups) * cout * k * k
    return Primitive(
        name=name,
        kind="conv",
        flops=float(flops),
        bytes_read=float((h_in * h_in * cin + weights) * _DTYPE_BYTES),
        bytes_written=float(h_out * h_out * cout * _DTYPE_BYTES),
    )


def _dw(name: str, channels: int, k: int, h_in: int, stride: int) -> Primitive:
    h_out = h_in // stride
    return Primitive(
        name=name,
        kind="dwconv",
        flops=float(h_out * h_out * channels * k * k),
        bytes_read=float((h_in * h_in * channels + channels * k * k) * _DTYPE_BYTES),
        bytes_written=float(h_out * h_out * channels * _DTYPE_BYTES),
    )


def _mem(name: str, elements: int) -> Primitive:
    return Primitive(
        name=name,
        kind="memory",
        flops=0.0,
        bytes_read=float(elements * _DTYPE_BYTES),
        bytes_written=float(elements * _DTYPE_BYTES),
    )


class NetBuilder:
    """Accumulates layers of primitives while tracking tensor geometry.

    Example::

        net = NetBuilder(input_size=224, input_channels=3)
        net.conv_bn(32, k=3, stride=2)
        net.mbconv(16, expansion=1, k=3, stride=1)
        ...
        net.head(1280, num_classes=1000)
        layers = net.layers
    """

    def __init__(self, input_size: int = 224, input_channels: int = 3):
        self.size = input_size
        self.channels = input_channels
        self.layers: List[List[Primitive]] = []
        self.flops = 0.0
        self.params = 0.0

    # -- internals -------------------------------------------------------------

    def _emit(self, prims: List[Primitive], params: float) -> None:
        self.layers.append(prims)
        self.flops += sum(p.flops for p in prims)
        self.params += params

    # -- elementary layers --------------------------------------------------------

    def conv_bn(self, cout: int, k: int, stride: int = 1, groups: int = 1) -> None:
        """Dense (or grouped) convolution + BN + activation."""
        cin = self.channels
        prim = _conv(f"conv{k}x{k}", cin, cout, k, self.size, stride, groups)
        self._emit([prim], params=(cin // groups) * cout * k * k + 2 * cout)
        self.channels = cout
        self.size //= stride

    def dwconv_bn(self, k: int, stride: int = 1) -> None:
        """Depthwise convolution + BN + activation."""
        c = self.channels
        prim = _dw(f"dw{k}x{k}", c, k, self.size, stride)
        self._emit([prim], params=c * k * k + 2 * c)
        self.size //= stride

    def maxpool(self, k: int = 3, stride: int = 2) -> None:
        """Max pooling (pure memory traffic on device)."""
        elements = self.channels * (self.size // stride) ** 2
        self._emit([_mem(f"maxpool{k}", elements)], params=0.0)
        self.size //= stride

    # -- composite blocks ----------------------------------------------------------

    def mbconv(
        self,
        cout: int,
        expansion: float,
        k: int,
        stride: int = 1,
        se: bool = False,
        mid: Optional[int] = None,
    ) -> None:
        """MobileNetV2-style inverted residual (MnasNet/FBNet/Proxyless).

        expansion 1x1 -> depthwise kxk -> (optional squeeze-excite) ->
        projection 1x1, with a residual add when geometry allows.
        ``mid`` overrides the expanded width (MobileNetV3 specifies it
        absolutely rather than as a ratio).
        """
        cin = self.channels
        if mid is None:
            mid = max(1, int(round(cin * expansion)))
        prims: List[Primitive] = []
        params = 0.0
        if mid != cin:
            prims.append(_conv("expand1x1", cin, mid, 1, self.size, 1))
            params += cin * mid + 2 * mid
        prims.append(_dw(f"dw{k}x{k}", mid, k, self.size, stride))
        params += mid * k * k + 2 * mid
        h_out = self.size // stride
        if se:
            se_mid = max(1, mid // 4)
            prims.append(_mem("se-gap", mid * h_out * h_out))
            prims.append(_conv("se-fc1", mid, se_mid, 1, 1, 1))
            prims.append(_conv("se-fc2", se_mid, mid, 1, 1, 1))
            prims.append(_mem("se-scale", mid * h_out * h_out))
            params += mid * se_mid * 2 + se_mid + mid
        prims.append(_conv("project1x1", mid, cout, 1, h_out, 1))
        params += mid * cout + 2 * cout
        if stride == 1 and cin == cout:
            prims.append(_mem("residual-add", cout * h_out * h_out))
        self._emit(prims, params)
        self.channels = cout
        self.size = h_out

    def shuffle_unit(self, cout: int, k: int = 3, stride: int = 1) -> None:
        """ShuffleNetV2 basic/downsampling unit."""
        cin = self.channels
        half = cout // 2
        h_in = self.size
        h_out = h_in // stride
        prims: List[Primitive] = []
        params = 0.0
        if stride == 1:
            cin_half = cin // 2
            prims.append(_conv("pw1", cin_half, half, 1, h_in, 1))
            prims.append(_dw(f"dw{k}", half, k, h_in, 1))
            prims.append(_conv("pw2", half, half, 1, h_in, 1))
            params += cin_half * half + half * k * k + half * half
        else:
            prims.append(_dw(f"l-dw{k}", cin, k, h_in, 2))
            prims.append(_conv("l-pw", cin, half, 1, h_out, 1))
            prims.append(_conv("r-pw1", cin, half, 1, h_in, 1))
            prims.append(_dw(f"r-dw{k}", half, k, h_in, 2))
            prims.append(_conv("r-pw2", half, half, 1, h_out, 1))
            params += cin * k * k + cin * half * 2 + half * k * k + half * half
        prims.append(_mem("shuffle", cout * h_out * h_out))
        self._emit(prims, params + 4 * cout)
        self.channels = cout
        self.size = h_out

    def sep_conv(self, cout: int, k: int, stride: int = 1) -> None:
        """DARTS separable conv: (dw k + pw 1x1) applied twice."""
        cin = self.channels
        h = self.size
        prims = [
            _dw(f"sep-dw{k}a", cin, k, h, stride),
            _conv("sep-pw-a", cin, cin, 1, h // stride, 1),
            _dw(f"sep-dw{k}b", cin, k, h // stride, 1),
            _conv("sep-pw-b", cin, cout, 1, h // stride, 1),
        ]
        params = cin * k * k * 2 + cin * cin + cin * cout + 4 * cout
        self._emit(prims, float(params))
        self.channels = cout
        self.size //= stride

    def darts_cell(self, channels: int, reduction: bool = False) -> None:
        """An approximate DARTS-V2 cell: 8 mixed ops on 4 nodes.

        The searched DARTS ImageNet cell is dominated by separable convs
        (3x3/5x5), dilated convs and skips; we charge four separable-conv
        pairs plus concatenation, which matches its kernel count — the
        property that makes DARTS slow on devices despite moderate FLOPs.
        """
        stride = 2 if reduction else 1
        cin = self.channels
        h = self.size
        h_out = h // stride
        prims: List[Primitive] = []
        params = 0.0
        # Two preprocess 1x1s (from the two predecessor cells).
        for tag in ("pre0", "pre1"):
            prims.append(_conv(tag, cin, channels, 1, h, 1))
            params += cin * channels
        # Eight edge ops: approximate the searched cell with six
        # separable-3x3 pairs and two dilated-3x3 pairs.
        for i in range(6):
            s = stride if i < 2 else 1
            hh = h if i < 2 else h_out
            prims.append(_dw(f"edge{i}-dw", channels, 3, hh, s))
            prims.append(_conv(f"edge{i}-pw", channels, channels, 1, hh // s, 1))
            params += channels * 9 + channels * channels
        for i in range(2):
            prims.append(_dw(f"dil{i}-dw", channels, 3, h_out, 1))
            prims.append(_conv(f"dil{i}-pw", channels, channels, 1, h_out, 1))
            params += channels * 9 + channels * channels
        # Node concatenation: 4 nodes x channels.
        prims.append(_mem("cell-concat", 4 * channels * h_out * h_out))
        self._emit(prims, params)
        self.channels = 4 * channels
        self.size = h_out

    # -- head ---------------------------------------------------------------------

    def head(self, head_channels: int, num_classes: int = 1000) -> None:
        """Final 1x1 conv + global average pool + classifier."""
        cin = self.channels
        prims = [
            _conv("head-conv", cin, head_channels, 1, self.size, 1),
            _mem("head-gap", head_channels * self.size * self.size),
            _conv("head-fc", head_channels, num_classes, 1, 1, 1),
        ]
        params = cin * head_channels + head_channels * num_classes + num_classes
        self._emit(prims, float(params))
        self.channels = num_classes
        self.size = 1

    def head_pooled(self, hidden: int, num_classes: int = 1000) -> None:
        """MobileNetV3-style head: pool first, then 1x1 convs at 1x1.

        Pooling before the wide projection saves the 7x7 spatial factor
        — the trick that makes MobileNetV3's 1280-wide head cheap.
        """
        cin = self.channels
        prims = [
            _mem("head-gap", cin * self.size * self.size),
            _conv("head-hidden", cin, hidden, 1, 1, 1),
            _conv("head-fc", hidden, num_classes, 1, 1, 1),
        ]
        params = cin * hidden + hidden + hidden * num_classes + num_classes
        self._emit(prims, float(params))
        self.channels = num_classes
        self.size = 1

    def fc_head(self, num_classes: int = 1000) -> None:
        """Global average pool + classifier (no final conv)."""
        cin = self.channels
        prims = [
            _mem("head-gap", cin * self.size * self.size),
            _conv("head-fc", cin, num_classes, 1, 1, 1),
        ]
        self._emit(prims, float(cin * num_classes + num_classes))
        self.channels = num_classes
        self.size = 1
