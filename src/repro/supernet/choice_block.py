"""One searchable layer: K parallel operators + a channel mask.

Only the *active* operator executes on each forward pass (single-path
weight sharing, as in the paper); the channel mask implements the
dynamic channel scaling of Sec. III-B, zeroing masked output channels
so their shared weights receive no gradient.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.layers.mask import ChannelMask
from repro.nn.module import Module
from repro.space.geometry import LayerGeometry
from repro.space.operators import operators
from repro.supernet.blocks import build_operator_module


class ChoiceBlock(Module):
    """The supernet's per-layer choice over (operator, channel factor)."""

    def __init__(self, geometry: LayerGeometry, rng: np.random.Generator):
        super().__init__()
        self.geometry = geometry
        self.ops: List[Module] = [
            build_operator_module(
                spec,
                geometry.max_in_channels,
                geometry.max_out_channels,
                geometry.stride,
                rng,
            )
            for spec in operators()
        ]
        self.mask = ChannelMask(geometry.max_out_channels, factor=1.0)
        self.active_op = 0

    def set_active(self, op_index: int, factor: float) -> None:
        """Select the operator and channel factor for subsequent passes."""
        if not 0 <= op_index < len(self.ops):
            raise IndexError(f"operator index {op_index} out of range")
        self.active_op = op_index
        self.mask.set_factor(factor)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.ops[self.active_op](x)
        return self.mask(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.mask.backward(grad_out)
        return self.ops[self.active_op].backward(grad)
