"""Single-core fast evaluation path for the weight-sharing supernet.

Search-time evaluation (the Eq.-4 quality estimate, EA/NSGA-II fitness,
LUT validation) only ever runs forward passes, and on the 1-core target
host the per-arch training-style forward is the wall (ROADMAP item 5).
:class:`SupernetFastEval` attacks it three ways:

* **No-grad forwards** — the whole pass runs under
  :func:`repro.nn.eval_no_grad`, so no layer allocates backward caches
  (asserted by ``tests/nn/test_eval_caches.py``), and 1x1 convolutions
  skip im2col entirely.
* **Batched candidate evaluation** — :meth:`forward_many` stacks all N
  candidate architectures into one activation tensor and runs *one*
  forward per distinct operator per layer (at most 5) instead of N
  per-arch passes, so the GEMMs see batch ``N_archs x N_images`` and the
  Python/layer-dispatch overhead is paid once per layer, not per arch.
  Channel masks are applied vectorized across the arch axis.
* **Opt-in int8 GEMMs** — ``precision="int8"`` runs every conv/linear
  GEMM against the *deployment* int8 weight grid (the per-output-channel
  scales of :mod:`repro.deploy.quantize`, via
  :func:`repro.nn.quantized.quantize_weight`), with float32 activations
  and fused eval-mode BN, all through float32 sgemm. This is an
  approximation of the float64 forward: gate it with
  :func:`repro.nn.quantized.ranking_fidelity` before trusting rankings.

The default ``precision="float"`` path is **bit-exact** with per-arch
eval-mode forwards through ``Supernet.forward`` — it performs the
identical numpy operations in the identical order, just batched — which
the equivalence tests assert byte-for-byte.

Per-stage wall-time attribution (im2col / GEMM / scoring / other) is
accumulated in :meth:`stage_times` for ``benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.functional import conv_output_size, im2col, pad_nchw
from repro.nn.inference import eval_no_grad
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.mask import make_mask
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module, Sequential
from repro.nn.quantized import QuantizedTensor, quantize_weight
from repro.space.architecture import Architecture
from repro.supernet.blocks import ShuffleV2Block, ShuffleXceptionBlock, SkipOp
from repro.supernet.model import Supernet
from repro.train.metrics import top_k_accuracy

PRECISIONS = ("float", "int8")


class SupernetFastEval:
    """Evaluation-only forward engine over a shared :class:`Supernet`.

    Parameters
    ----------
    supernet:
        The weight-sharing supernet. Its weights are read, never
        written; its train/eval mode is restored after every call.
    precision:
        ``"float"`` (default) for the bit-exact float64 path, or
        ``"int8"`` for quantized GEMMs (see module docstring).
    bits:
        Quantization width for the int8 path (kept at 8 in practice).
    """

    def __init__(self, supernet: Supernet, precision: str = "float", bits: int = 8):
        if precision not in PRECISIONS:
            raise ValueError(f"precision must be one of {PRECISIONS}")
        self.supernet = supernet
        self.precision = precision
        self.bits = bits
        # One column buffer per conv layer, replaced when the input
        # geometry changes — persistent across candidates, bounded in
        # count by the number of conv layers.
        self._col_buffers: Dict[int, np.ndarray] = {}
        self._qweights: Dict[int, QuantizedTensor] = {}
        self._bn_fused: Dict[int, tuple] = {}
        self._times: Dict[str, float] = {}
        self.reset_stage_times()

    # -- timing ----------------------------------------------------------------

    def reset_stage_times(self) -> None:
        """Zero the per-stage wall-time accumulators."""
        self._times = {
            "im2col_s": 0.0,
            "gemm_s": 0.0,
            "scoring_s": 0.0,
            "other_s": 0.0,
            "total_s": 0.0,
        }

    def stage_times(self) -> Dict[str, float]:
        """Accumulated wall time per stage since the last reset.

        ``gemm_s`` includes int8 quantize/rescale when running at int8;
        ``other_s`` is everything not otherwise attributed (BN,
        activations, pooling, concat/shuffle, mask application).
        """
        times = dict(self._times)
        attributed = times["im2col_s"] + times["gemm_s"] + times["scoring_s"]
        times["other_s"] = max(0.0, times["total_s"] - attributed)
        return times

    # -- kernels ---------------------------------------------------------------

    def invalidate_weights(self) -> None:
        """Drop cached int8 weights and fused BN constants.

        Call after mutating supernet weights or BN running statistics
        (e.g. between training epochs); the caches are rebuilt lazily.
        """
        self._qweights.clear()
        self._bn_fused.clear()

    def _qweight(self, layer: Module) -> QuantizedTensor:
        cached = self._qweights.get(id(layer))
        if cached is None:
            cached = quantize_weight(layer.weight.data, bits=self.bits)
            self._qweights[id(layer)] = cached
        return cached

    def _conv(self, conv: Conv2d, x: np.ndarray) -> np.ndarray:
        if self.precision == "int8":
            return self._conv_int8(conv, x)
        n, c, h, w = x.shape
        g = conv.groups
        k = conv.kernel_size
        cin_g = conv.in_channels // g
        cout_g = conv.out_channels // g

        t0 = time.perf_counter()
        if conv._is_pointwise:
            cols, out_h, out_w = x.reshape(n, c, h * w), h, w
        else:
            cols, out_h, out_w = self._im2col(conv, x)
        t1 = time.perf_counter()
        self._times["im2col_s"] += t1 - t0

        colsg = cols.reshape(n, g, cin_g * k * k, out_h * out_w)
        wmat = conv.weight.data.reshape(g, cout_g, cin_g * k * k)
        out = np.matmul(wmat[None], colsg)
        self._times["gemm_s"] += time.perf_counter() - t1

        out = out.reshape(n, conv.out_channels, out_h, out_w)
        if conv.bias is not None:
            out = out + conv.bias.data[None, :, None, None]
        return out

    def _im2col(self, conv: Conv2d, x: np.ndarray):
        """im2col through this conv's persistent column buffer."""
        buf = self._col_buffers.get(id(conv))
        if buf is not None and (
            buf.shape[:4] != (x.shape[0], x.shape[1], conv.kernel_size,
                              conv.kernel_size)
            or buf.dtype != x.dtype
        ):
            buf = None
        cols, out_h, out_w = im2col(
            x, conv.kernel_size, conv.stride, conv.padding, out=buf
        )
        self._col_buffers[id(conv)] = cols.base if cols.base is not None else cols
        return cols, out_h, out_w

    def _conv_int8(self, conv: Conv2d, x: np.ndarray) -> np.ndarray:
        """Convolution against the deployment int8 weight grid, float32.

        The weight enters the GEMM as its int8 integer codes (one
        symmetric scale per output channel — the identical grid
        :func:`repro.deploy.quantize.quantize_model_weights` ships);
        activations stay float32, as deployment keeps biases and norm
        parameters in float. The sgemm halves memory traffic against
        the float64 path, and depthwise kernels skip im2col entirely: a
        grouped GEMM with one input channel per group is block-diagonal,
        so a direct k*k tap accumulation over strided views does
        strictly less work.
        """
        x = x.astype(np.float32, copy=False)
        n, c, h, w = x.shape
        g = conv.groups
        k = conv.kernel_size
        cin_g = conv.in_channels // g
        cout_g = conv.out_channels // g
        qw = self._qweight(conv)
        wscale = np.asarray(qw.scale, dtype=np.float32)

        if g == conv.in_channels and cout_g == 1:  # depthwise, direct
            t0 = time.perf_counter()
            out_h = conv_output_size(h, k, conv.stride, conv.padding)
            out_w = conv_output_size(w, k, conv.stride, conv.padding)
            xp = pad_nchw(x, conv.padding)
            taps = qw.q.reshape(c, k * k, 1, 1)
            out = np.empty((n, c, out_h, out_w), dtype=np.float32)
            tmp = np.empty_like(out)
            for ki in range(k):
                hi_end = ki + conv.stride * out_h
                for kj in range(k):
                    wj_end = kj + conv.stride * out_w
                    view = xp[:, :, ki:hi_end:conv.stride, kj:wj_end:conv.stride]
                    if ki == 0 and kj == 0:
                        np.multiply(view, taps[None, :, 0], out=out)
                    else:
                        np.multiply(view, taps[None, :, ki * k + kj], out=tmp)
                        out += tmp
            out *= wscale[None, :, None, None]
            self._times["gemm_s"] += time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            if conv._is_pointwise:
                cols, out_h, out_w = x.reshape(n, c, h * w), h, w
            else:
                cols, out_h, out_w = self._im2col(conv, x)
            t1 = time.perf_counter()
            self._times["im2col_s"] += t1 - t0
            colsg = cols.reshape(n, g, cin_g * k * k, out_h * out_w)
            qwmat = qw.q.reshape(g, cout_g, cin_g * k * k)
            out = np.matmul(qwmat[None], colsg)
            out *= wscale.reshape(g, cout_g)[None, :, :, None]
            out = out.reshape(n, conv.out_channels, out_h, out_w)
            self._times["gemm_s"] += time.perf_counter() - t1

        if conv.bias is not None:
            out = out + conv.bias.data.astype(np.float32)[None, :, None, None]
        return out

    def _bn_int8(self, bn: BatchNorm2d, x: np.ndarray) -> np.ndarray:
        """Eval-mode BN folded to one float32 multiply-add per element."""
        fused = self._bn_fused.get(id(bn))
        if fused is None:
            inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
            scale = (bn.gamma.data * inv_std).astype(np.float32)
            shift = (
                bn.beta.data - bn.running_mean * bn.gamma.data * inv_std
            ).astype(np.float32)
            fused = (scale, shift)
            self._bn_fused[id(bn)] = fused
        scale, shift = fused
        return x * scale[None, :, None, None] + shift[None, :, None, None]

    def _mask(self, block, x: np.ndarray) -> np.ndarray:
        """Apply a choice block's channel mask (float32 at int8)."""
        if self.precision == "int8":
            return x * block.mask.mask.astype(np.float32)[None, :, None, None]
        return block.mask(x)

    def _linear(self, linear: Linear, x: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        if self.precision == "int8":
            qw = self._qweight(linear)
            out = x.astype(np.float32, copy=False) @ qw.q.T
            out *= np.asarray(qw.scale, dtype=np.float32)[None, :]
        else:
            out = x @ linear.weight.data.T
        self._times["gemm_s"] += time.perf_counter() - t0
        if linear.bias is not None:
            bias = linear.bias.data
            if self.precision == "int8":
                bias = bias.astype(np.float32)
            out = out + bias[None, :]
        return out

    def _module(self, m: Module, x: np.ndarray) -> np.ndarray:
        """Structure-walking dispatch mirroring each module's forward."""
        if isinstance(m, Conv2d):
            return self._conv(m, x)
        if isinstance(m, Linear):
            return self._linear(m, x)
        if isinstance(m, BatchNorm2d) and self.precision == "int8":
            return self._bn_int8(m, x)
        if isinstance(m, Sequential):
            for layer in m.layers:
                x = self._module(layer, x)
            return x
        if isinstance(m, (ShuffleV2Block, ShuffleXceptionBlock)):
            if m.stride == 1:
                split = x.shape[1] // 2
                out = np.concatenate(
                    [x[:, :split], self._module(m.branch, x[:, split:])], axis=1
                )
            else:
                out = np.concatenate(
                    [self._module(m.left, x), self._module(m.branch, x)], axis=1
                )
            return m.shuffle(out)
        if isinstance(m, SkipOp):
            if m.proj is None:
                return x
            return self._module(m.proj, m.pool(x))
        return m.forward(x)

    # -- forwards --------------------------------------------------------------

    def forward(self, arch: Architecture, images: np.ndarray) -> np.ndarray:
        """Logits ``(N, num_classes)`` for one architecture."""
        net = self.supernet
        net.set_architecture(arch)
        t0 = time.perf_counter()
        with eval_no_grad(net):
            x = self._module(net.stem, images)
            for block in net.blocks:
                x = self._module(block.ops[block.active_op], x)
                x = self._mask(block, x)
            x = self._module(net.head, x)
            x = net.pool(x)
            logits = self._linear(net.classifier, x)
        self._times["total_s"] += time.perf_counter() - t0
        return logits

    def forward_many(
        self,
        archs: Sequence[Architecture],
        images: np.ndarray,
        chunk_archs: Optional[int] = None,
    ) -> np.ndarray:
        """Logits ``(A, N, num_classes)`` for a batch of architectures.

        The stem runs once; each choice layer runs one forward per
        *distinct* active operator over the stacked arch axis. Exact:
        every sample's logits are bit-identical to :meth:`forward` on
        its own (eval-mode layers are per-sample independent).

        ``chunk_archs`` bounds peak activation memory (which scales with
        ``A x N``) by processing the arch batch in slices.
        """
        if len(archs) == 0:
            raise ValueError("need at least one architecture")
        if chunk_archs is not None:
            if chunk_archs < 1:
                raise ValueError("chunk_archs must be >= 1")
            pieces = [
                self.forward_many(archs[i : i + chunk_archs], images)
                for i in range(0, len(archs), chunk_archs)
            ]
            return np.concatenate(pieces, axis=0)

        net = self.supernet
        num_archs = len(archs)
        for arch in archs:
            if arch.num_layers != len(net.blocks):
                raise ValueError(
                    f"architecture has {arch.num_layers} layers; "
                    f"supernet has {len(net.blocks)}"
                )
        t0 = time.perf_counter()
        with eval_no_grad(net):
            stem_out = self._module(net.stem, images)
            acts = np.repeat(stem_out[None], num_archs, axis=0)
            for li, block in enumerate(net.blocks):
                ops = np.array([arch.ops[li] for arch in archs])
                new_acts = None
                for op_idx in np.unique(ops):
                    rows = np.nonzero(ops == op_idx)[0]
                    sub = acts[rows]
                    flat = sub.reshape(-1, *sub.shape[2:])
                    out = self._module(block.ops[int(op_idx)], flat)
                    out = out.reshape(len(rows), sub.shape[1], *out.shape[1:])
                    if new_acts is None:
                        new_acts = np.empty(
                            (num_archs,) + out.shape[1:], dtype=out.dtype
                        )
                    new_acts[rows] = out
                masks = np.stack(
                    [
                        make_mask(block.geometry.max_out_channels, arch.factors[li])
                        for arch in archs
                    ]
                )
                if self.precision == "int8":
                    masks = masks.astype(np.float32)
                acts = new_acts * masks[:, None, :, None, None]
            flat = acts.reshape(-1, *acts.shape[2:])
            x = self._module(net.head, flat)
            x = net.pool(x)
            # The classifier is the one 2-D GEMM in the whole pass: its
            # BLAS blocking (and thus summation order) depends on the
            # row count, so run it per arch block of N rows to keep the
            # result bit-identical to the per-arch path. All conv GEMMs
            # are per-sample slices already.
            features = x.reshape(num_archs, images.shape[0], -1)
            logits = np.stack(
                [
                    self._linear(net.classifier, features[i])
                    for i in range(num_archs)
                ]
            )
        self._times["total_s"] += time.perf_counter() - t0
        return logits

    # -- accuracy proxies ------------------------------------------------------

    def accuracy(
        self, arch: Architecture, images: np.ndarray, labels: np.ndarray
    ) -> float:
        """Top-1 weight-sharing accuracy of one subnet (eval-mode BN)."""
        logits = self.forward(arch, images)
        t0 = time.perf_counter()
        acc = top_k_accuracy(logits, labels, k=1)
        self._times["scoring_s"] += time.perf_counter() - t0
        return acc

    def accuracy_many(
        self,
        archs: Sequence[Architecture],
        images: np.ndarray,
        labels: np.ndarray,
        chunk_archs: Optional[int] = None,
    ) -> List[float]:
        """Top-1 accuracies for a batch of subnets via one stacked pass."""
        logits = self.forward_many(archs, images, chunk_archs=chunk_archs)
        t0 = time.perf_counter()
        accs = [top_k_accuracy(logits[i], labels, k=1) for i in range(len(archs))]
        self._times["scoring_s"] += time.perf_counter() - t0
        return accs
