"""The full weight-sharing supernet."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import GlobalAvgPool2d
from repro.nn.module import Module, Sequential
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace
from repro.supernet.choice_block import ChoiceBlock


class Supernet(Module):
    """Stem + L choice blocks + classifier head, with shared weights.

    Any architecture in the space can be activated with
    :meth:`set_architecture`; forward/backward then exercise exactly the
    chosen single path, with channel masking applied per layer.
    """

    def __init__(self, space: SearchSpace, seed: int = 0):
        super().__init__()
        self.space = space
        cfg = space.config
        rng = np.random.default_rng(seed)
        self.stem = Sequential(
            Conv2d(cfg.input_channels, cfg.stem_channels, 3, stride=2, padding=1,
                   rng=rng),
            BatchNorm2d(cfg.stem_channels),
            ReLU(),
        )
        self.blocks: List[ChoiceBlock] = [
            ChoiceBlock(geom, rng) for geom in space.geometry
        ]
        last_channels = space.geometry[-1].max_out_channels
        self.head = Sequential(
            Conv2d(last_channels, cfg.head_channels, 1, rng=rng),
            BatchNorm2d(cfg.head_channels),
            ReLU(),
        )
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(cfg.head_channels, cfg.num_classes, rng=rng)
        self._active: Optional[Architecture] = None

    # -- path selection --------------------------------------------------------

    def set_architecture(self, arch: Architecture) -> None:
        """Activate one (op, factor) path per layer."""
        if arch.num_layers != len(self.blocks):
            raise ValueError(
                f"architecture has {arch.num_layers} layers; "
                f"supernet has {len(self.blocks)}"
            )
        for block, op, factor in zip(self.blocks, arch.ops, arch.factors):
            block.set_active(op, factor)
        self._active = arch

    @property
    def active_architecture(self) -> Optional[Architecture]:
        return self._active

    # -- forward / backward ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._active is None:
            raise RuntimeError("call set_architecture before forward")
        x = self.stem(x)
        for block in self.blocks:
            x = block(x)
        x = self.head(x)
        x = self.pool(x)
        return self.classifier(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.head.backward(grad)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.stem.backward(grad)
