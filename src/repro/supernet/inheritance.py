"""Weight inheritance: extracting subnets from a trained supernet.

The paper evaluates candidates "with inherited weights from the
supernet by means of the weight-sharing technique". These helpers make
that inheritance explicit: clone a supernet's parameters *and* batch-
norm running statistics into a fresh instance, activate one
architecture, and optionally use it to warm-start stand-alone training
(which converges visibly faster than a cold start — tested in
``tests/supernet/test_inheritance.py``).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module
from repro.space.architecture import Architecture
from repro.supernet.model import Supernet


def _paired_modules(a: Module, b: Module) -> Iterator[Tuple[Module, Module]]:
    """Zip two structurally identical module trees."""
    mods_a = list(a.modules())
    mods_b = list(b.modules())
    if len(mods_a) != len(mods_b):
        raise ValueError(
            f"module trees differ in size ({len(mods_a)} vs {len(mods_b)})"
        )
    for ma, mb in zip(mods_a, mods_b):
        if type(ma) is not type(mb):
            raise ValueError(
                f"module trees differ in structure: {type(ma).__name__} "
                f"vs {type(mb).__name__}"
            )
        yield ma, mb


def copy_weights_and_stats(source: Module, target: Module) -> None:
    """Copy parameters and BN running statistics between identical trees.

    ``state_dict`` covers parameters only; batch-norm running statistics
    are buffers and must follow the weights for inherited inference to
    behave.
    """
    pairs = list(_paired_modules(source, target))  # validates structure
    target.load_state_dict(source.state_dict())
    for src, dst in pairs:
        if isinstance(src, BatchNorm2d):
            dst.running_mean = src.running_mean.copy()
            dst.running_var = src.running_var.copy()


def extract_subnet(supernet: Supernet, arch: Architecture) -> Supernet:
    """Clone the supernet and activate ``arch`` in the clone.

    The clone shares nothing with the original (deep parameter copies),
    so it can be trained or fine-tuned independently — this is the
    warm-start initialization the one-shot literature uses.
    """
    clone = Supernet(supernet.space, seed=0)
    copy_weights_and_stats(supernet, clone)
    clone.set_architecture(arch)
    return clone


def inherit_into(supernet: Supernet, arch: Architecture, target: Supernet) -> None:
    """Copy inherited weights into an existing supernet instance."""
    if target.space.config != supernet.space.config:
        raise ValueError("target supernet must share the space configuration")
    copy_weights_and_stats(supernet, target)
    target.set_architecture(arch)
