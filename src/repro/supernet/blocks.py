"""Numpy implementations of the five candidate operators.

These mirror the analytic :class:`repro.space.operators.OperatorSpec`
definitions exactly: ShuffleNetV2 basic/downsampling units with kernel
3/5/7, the Xception variant (three stacked depthwise-3x3 stages), and
the skip connection (identity, or pool+project in downsampling layers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import AvgPool2d
from repro.nn.layers.shuffle import ChannelShuffle
from repro.nn.module import Module, Sequential
from repro.space.operators import OperatorSpec


def _conv_bn_relu(cin: int, cout: int, k: int, stride: int, groups: int,
                  rng: np.random.Generator, relu: bool = True) -> Sequential:
    pad = k // 2
    layers = [
        Conv2d(cin, cout, k, stride=stride, padding=pad, groups=groups, rng=rng),
        BatchNorm2d(cout),
    ]
    if relu:
        layers.append(ReLU())
    return Sequential(*layers)


class ShuffleV2Block(Module):
    """ShuffleNetV2 unit with a configurable depthwise kernel size.

    stride 1: channel split, transform the right half
    (1x1 -> dw kxk -> 1x1), concat, shuffle. Requires ``cin == cout``.
    stride 2: both branches consume the full input; concat halves.
    """

    def __init__(self, cin: int, cout: int, kernel_size: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        if stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        if stride == 1 and cin != cout:
            raise ValueError("stride-1 shuffle block needs cin == cout")
        if cout % 2:
            raise ValueError("cout must be even (channel split)")
        self.stride = stride
        self.cin = cin
        self.cout = cout
        half = cout // 2
        k = kernel_size
        if stride == 1:
            branch_in = cin // 2
            self.branch = Sequential(
                Conv2d(branch_in, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
                Conv2d(half, half, k, stride=1, padding=k // 2, groups=half, rng=rng),
                BatchNorm2d(half),
                Conv2d(half, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
            )
            self.left = None
        else:
            self.left = Sequential(
                Conv2d(cin, cin, k, stride=2, padding=k // 2, groups=cin, rng=rng),
                BatchNorm2d(cin),
                Conv2d(cin, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
            )
            self.branch = Sequential(
                Conv2d(cin, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
                Conv2d(half, half, k, stride=2, padding=k // 2, groups=half, rng=rng),
                BatchNorm2d(half),
                Conv2d(half, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
            )
        self.shuffle = ChannelShuffle(groups=2)
        self._left_channels: Optional[int] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.stride == 1:
            split = x.shape[1] // 2
            # Only training forwards may retain per-call state: eval
            # forwards must leave no caches behind (docs/performance.md).
            self._left_channels = split if self.training else None
            left, right = x[:, :split], x[:, split:]
            out = np.concatenate([left, self.branch(right)], axis=1)
        else:
            out = np.concatenate([self.left(x), self.branch(x)], axis=1)
        return self.shuffle(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.shuffle.backward(grad_out)
        if self.stride == 1:
            split = self._left_channels
            if split is None:
                raise RuntimeError(
                    "backward called without a cached training forward"
                )
            grad_left = grad[:, :split]
            grad_right = self.branch.backward(grad[:, split:])
            return np.concatenate([grad_left, grad_right], axis=1)
        half = self.cout // 2
        grad_in = self.left.backward(grad[:, :half])
        grad_in = grad_in + self.branch.backward(grad[:, half:])
        return grad_in


class ShuffleXceptionBlock(Module):
    """ShuffleNetV2-Xception unit: dw3-1x1 repeated three times."""

    def __init__(self, cin: int, cout: int, stride: int, rng: np.random.Generator):
        super().__init__()
        if stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        if stride == 1 and cin != cout:
            raise ValueError("stride-1 xception block needs cin == cout")
        if cout % 2:
            raise ValueError("cout must be even (channel split)")
        self.stride = stride
        self.cin = cin
        self.cout = cout
        half = cout // 2
        if stride == 1:
            branch_in = cin // 2
            self.branch = Sequential(
                Conv2d(branch_in, branch_in, 3, padding=1, groups=branch_in, rng=rng),
                BatchNorm2d(branch_in),
                Conv2d(branch_in, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
                Conv2d(half, half, 3, padding=1, groups=half, rng=rng),
                BatchNorm2d(half),
                Conv2d(half, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
                Conv2d(half, half, 3, padding=1, groups=half, rng=rng),
                BatchNorm2d(half),
                Conv2d(half, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
            )
            self.left = None
        else:
            self.left = Sequential(
                Conv2d(cin, cin, 3, stride=2, padding=1, groups=cin, rng=rng),
                BatchNorm2d(cin),
                Conv2d(cin, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
            )
            self.branch = Sequential(
                Conv2d(cin, cin, 3, stride=2, padding=1, groups=cin, rng=rng),
                BatchNorm2d(cin),
                Conv2d(cin, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
                Conv2d(half, half, 3, padding=1, groups=half, rng=rng),
                BatchNorm2d(half),
                Conv2d(half, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
                Conv2d(half, half, 3, padding=1, groups=half, rng=rng),
                BatchNorm2d(half),
                Conv2d(half, half, 1, rng=rng),
                BatchNorm2d(half),
                ReLU(),
            )
        self.shuffle = ChannelShuffle(groups=2)
        self._left_channels: Optional[int] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.stride == 1:
            split = x.shape[1] // 2
            # Only training forwards may retain per-call state: eval
            # forwards must leave no caches behind (docs/performance.md).
            self._left_channels = split if self.training else None
            left, right = x[:, :split], x[:, split:]
            out = np.concatenate([left, self.branch(right)], axis=1)
        else:
            out = np.concatenate([self.left(x), self.branch(x)], axis=1)
        return self.shuffle(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.shuffle.backward(grad_out)
        if self.stride == 1:
            split = self._left_channels
            if split is None:
                raise RuntimeError(
                    "backward called without a cached training forward"
                )
            grad_left = grad[:, :split]
            grad_right = self.branch.backward(grad[:, split:])
            return np.concatenate([grad_left, grad_right], axis=1)
        half = self.cout // 2
        grad_in = self.left.backward(grad[:, :half])
        grad_in = grad_in + self.branch.backward(grad[:, half:])
        return grad_in


class SkipOp(Module):
    """Skip connection: identity at stride 1, pool+project at stride 2."""

    def __init__(self, cin: int, cout: int, stride: int, rng: np.random.Generator):
        super().__init__()
        self.stride = stride
        if stride == 1 and cin == cout:
            self.proj = None
        else:
            self.pool = AvgPool2d(kernel_size=stride, stride=stride)
            self.proj = Sequential(
                Conv2d(cin, cout, 1, rng=rng),
                BatchNorm2d(cout),
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.proj is None:
            return x
        return self.proj(self.pool(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self.proj is None:
            return grad_out
        return self.pool.backward(self.proj.backward(grad_out))


def build_operator_module(
    spec: OperatorSpec,
    cin: int,
    cout: int,
    stride: int,
    rng: np.random.Generator,
) -> Module:
    """Instantiate the numpy module for an analytic operator spec."""
    if spec.kind == "shuffle":
        return ShuffleV2Block(cin, cout, spec.kernel_size, stride, rng)
    if spec.kind == "shuffle_x":
        return ShuffleXceptionBlock(cin, cout, stride, rng)
    if spec.kind == "skip":
        return SkipOp(cin, cout, stride, rng)
    raise ValueError(f"unknown operator kind {spec.kind!r}")
