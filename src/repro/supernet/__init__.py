"""The weight-sharing supernet (real numpy training path).

The analytic packages (:mod:`repro.hardware`, :mod:`repro.accuracy`)
handle paper-scale experiments; this package implements the actual
supernet with shared weights, one choice block per searchable layer,
channel masking for dynamic channel scaling, and subnet activation —
the machinery the paper trains on ImageNet, exercised here on the proxy
space with real gradients.
"""

from repro.supernet.blocks import (
    ShuffleV2Block,
    ShuffleXceptionBlock,
    SkipOp,
    build_operator_module,
)
from repro.supernet.choice_block import ChoiceBlock
from repro.supernet.fast_eval import SupernetFastEval
from repro.supernet.inheritance import (
    copy_weights_and_stats,
    extract_subnet,
    inherit_into,
)
from repro.supernet.model import Supernet

__all__ = [
    "copy_weights_and_stats",
    "extract_subnet",
    "inherit_into",
    "ShuffleV2Block",
    "ShuffleXceptionBlock",
    "SkipOp",
    "build_operator_module",
    "ChoiceBlock",
    "Supernet",
    "SupernetFastEval",
]
