"""Procedural image-classification dataset.

Each class is defined by a smooth random texture prototype (a sum of
low-frequency 2-D cosines with class-specific frequencies and phases).
A sample is its class prototype under a random translation plus additive
noise and a random global contrast jitter — so class evidence is spread
over spatial frequencies and positions, and higher-capacity networks
genuinely separate the classes better until saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class SyntheticImageDataset:
    """A fixed train/test split of the procedural task.

    Attributes
    ----------
    train_x, train_y, test_x, test_y:
        NCHW image tensors and integer label vectors.
    num_classes:
        Number of classes.
    """

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @classmethod
    def generate(
        cls,
        num_classes: int = 10,
        train_per_class: int = 64,
        test_per_class: int = 16,
        image_size: int = 32,
        channels: int = 3,
        noise: float = 0.35,
        seed: int = 0,
    ) -> "SyntheticImageDataset":
        """Generate a dataset deterministically from ``seed``."""
        if num_classes < 2:
            raise ValueError("need at least two classes")
        rng = np.random.default_rng(seed)
        prototypes = _class_prototypes(rng, num_classes, image_size, channels)

        def make_split(per_class: int) -> Tuple[np.ndarray, np.ndarray]:
            images = []
            labels = []
            for cls_idx in range(num_classes):
                for _ in range(per_class):
                    images.append(
                        _render_sample(rng, prototypes[cls_idx], noise)
                    )
                    labels.append(cls_idx)
            x = np.stack(images).astype(np.float64)
            y = np.asarray(labels, dtype=np.int64)
            order = rng.permutation(len(y))
            return x[order], y[order]

        train_x, train_y = make_split(train_per_class)
        test_x, test_y = make_split(test_per_class)
        return cls(train_x, train_y, test_x, test_y, num_classes)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_x.shape[1:])  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self.train_y)


def _class_prototypes(
    rng: np.random.Generator, num_classes: int, size: int, channels: int
) -> np.ndarray:
    """Smooth class-specific textures: sums of low-frequency cosines."""
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    protos = np.zeros((num_classes, channels, size, size))
    for cls_idx in range(num_classes):
        for ch in range(channels):
            pattern = np.zeros((size, size))
            for _ in range(4):
                fx, fy = rng.uniform(0.5, 3.0, size=2) * 2 * np.pi / size
                phase = rng.uniform(0, 2 * np.pi)
                amp = rng.uniform(0.5, 1.0)
                pattern += amp * np.cos(fx * xx + fy * yy + phase)
            protos[cls_idx, ch] = pattern / np.abs(pattern).max()
    return protos


def _render_sample(
    rng: np.random.Generator, prototype: np.ndarray, noise: float
) -> np.ndarray:
    """One sample: translated prototype + contrast jitter + noise."""
    size = prototype.shape[-1]
    shift_y, shift_x = rng.integers(-size // 8, size // 8 + 1, size=2)
    shifted = np.roll(prototype, (shift_y, shift_x), axis=(-2, -1))
    contrast = rng.uniform(0.8, 1.2)
    sample = contrast * shifted + rng.normal(0.0, noise, size=prototype.shape)
    return sample
