"""Data substrate: a procedurally generated image-classification task.

ImageNet is not available in this environment, so the real-training
experiments run on a synthetic dataset whose classes are distinguishable
only through spatially structured features — the property that makes a
convolutional architecture (and its capacity allocation) matter, which
is what the supernet-training experiments need to exercise.
"""

from repro.data.synthetic import SyntheticImageDataset
from repro.data.augment import pad_and_crop, random_flip
from repro.data.loader import BatchLoader

__all__ = [
    "SyntheticImageDataset",
    "random_flip",
    "pad_and_crop",
    "BatchLoader",
]
