"""Standard data augmentations (numpy, NCHW batches)."""

from __future__ import annotations

import numpy as np


def random_flip(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Horizontally flip each image with probability 0.5."""
    flips = rng.random(batch.shape[0]) < 0.5
    out = batch.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


def pad_and_crop(
    batch: np.ndarray, rng: np.random.Generator, padding: int = 2
) -> np.ndarray:
    """Zero-pad then randomly crop back to the original size."""
    if padding < 1:
        raise ValueError("padding must be >= 1")
    n, c, h, w = batch.shape
    padded = np.pad(
        batch, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    out = np.empty_like(batch)
    offsets = rng.integers(0, 2 * padding + 1, size=(n, 2))
    for i, (oy, ox) in enumerate(offsets):
        out[i] = padded[i, :, oy : oy + h, ox : ox + w]
    return out


def cutout(
    batch: np.ndarray, rng: np.random.Generator, length: int = 8
) -> np.ndarray:
    """Zero a random square patch per image (DeVries & Taylor, 2017)."""
    n, _, h, w = batch.shape
    out = batch.copy()
    ys = rng.integers(0, h, size=n)
    xs = rng.integers(0, w, size=n)
    half = length // 2
    for i in range(n):
        y0, y1 = max(0, ys[i] - half), min(h, ys[i] + half)
        x0, x1 = max(0, xs[i] - half), min(w, xs[i] + half)
        out[i, :, y0:y1, x0:x1] = 0.0
    return out
