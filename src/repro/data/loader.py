"""Mini-batch iteration with optional augmentation."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

Augmentation = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class BatchLoader:
    """Shuffled mini-batch iterator over an (images, labels) pair.

    Parameters
    ----------
    images, labels:
        NCHW tensor and matching label vector.
    batch_size:
        Mini-batch size; the final short batch is kept.
    augmentations:
        Applied in order to each training batch.
    seed:
        Shuffle/augmentation seed; each :meth:`epoch` call advances the
        stream, so epochs see different orders but the whole run is
        reproducible.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        augmentations: Optional[List[Augmentation]] = None,
        seed: int = 0,
    ):
        if len(images) != len(labels):
            raise ValueError("images and labels must have equal length")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.augmentations = augmentations or []
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        return (len(self.labels) + self.batch_size - 1) // self.batch_size

    def epoch(self, augment: bool = True) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield one epoch of shuffled (batch, labels) pairs."""
        order = self._rng.permutation(len(self.labels))
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            batch = self.images[idx]
            if augment:
                for aug in self.augmentations:
                    batch = aug(batch, self._rng)
            yield batch, self.labels[idx]
