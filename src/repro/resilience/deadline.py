"""Cooperative deadlines: a cancel token checked at safe points.

The serving path promises that an expired request stops burning CPU
"within one generation": the search stack cannot be preempted, so the
token is *checked* — per EA/NSGA-II generation, per worker-pool
dispatch — and raises :class:`DeadlineExceeded` at the first check
after expiry. Every check records progress counters, so the 504 a
client receives reports exactly how far the search got (the chaos CI
job asserts cancellation granularity from those counters).

Checks never consume randomness and never mutate search state, so a
run that finishes under its deadline is bit-identical to the same run
without a token.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class DeadlineExceeded(RuntimeError):
    """A cooperative cancellation fired; carries partial progress."""

    def __init__(self, message: str, progress: Optional[Dict] = None):
        super().__init__(message)
        self.progress: Dict = dict(progress or {})


class CancelToken:
    """One request's cancellation state, checked cooperatively.

    Parameters
    ----------
    deadline_s:
        Optional wall-clock budget from construction time. ``None``
        means no deadline — the token only fires via :meth:`cancel`.
    clock:
        Injectable monotonic clock (tests drive expiry deterministically).
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self._clock = clock
        self._deadline = None if deadline_s is None else clock() + deadline_s
        self._cancelled = False
        # Observability: how often the stack polled, and how far it got.
        self.checks = 0
        self.progress: Dict = {}

    @classmethod
    def after_ms(
        cls,
        deadline_ms: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "CancelToken":
        """The wire form: ``deadline_ms`` from a query payload."""
        return cls(deadline_s=float(deadline_ms) / 1e3, clock=clock)

    def cancel(self) -> None:
        """Fire the token regardless of any deadline."""
        self._cancelled = True

    @property
    def expired(self) -> bool:
        if self._cancelled:
            return True
        return self._deadline is not None and self._clock() >= self._deadline

    def remaining_s(self) -> Optional[float]:
        """Seconds until expiry; ``None`` when there is no deadline."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def check(self, **progress) -> None:
        """Record progress, then raise :class:`DeadlineExceeded` if due.

        ``progress`` keyword counters (``generations_done``,
        ``chunks_dispatched``, ...) accumulate on the token and ride on
        the exception, so the layer that answers the client can report
        exactly where the work stopped.
        """
        self.checks += 1
        if progress:
            self.progress.update(progress)
        if self.expired:
            reason = (
                "cancelled" if self._cancelled else "deadline exceeded"
            )
            raise DeadlineExceeded(reason, progress=self.progress)


__all__ = ["CancelToken", "DeadlineExceeded"]
