"""Online resilience primitives for the serving stack.

Four small, separately-testable pieces the daemon composes into its
overload story (see ``docs/robustness.md``, "Online resilience"):

* :mod:`~repro.resilience.deadline` — cooperative
  :class:`CancelToken` / :class:`DeadlineExceeded`, checked per search
  generation and per worker-pool dispatch.
* :mod:`~repro.resilience.admission` — :class:`AdmissionController`,
  a bounded in-flight limit + bounded queue with deterministic load
  shedding.
* :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker`
  (closed/open/half-open) guarding live backend dispatch, with
  :class:`BreakerOpenError` driving graceful degradation.
* :mod:`~repro.resilience.chaos` — the seeded chaos harness
  (:class:`ChaosSpec` / :class:`FlakyBackend` / :class:`ChaosProxy`)
  that the ``serve_chaos`` bench and CI job drive.

None of these consume randomness on the healthy path, so a run that
never sheds, trips, or expires is bit-identical with or without them.
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import (
    BreakerOpenError,
    CircuitBreaker,
    ServiceOverloadError,
)
from repro.resilience.chaos import (
    ChaosError,
    ChaosInjector,
    ChaosProxy,
    ChaosSpec,
    FlakyBackend,
)
from repro.resilience.deadline import CancelToken, DeadlineExceeded

__all__ = [
    "AdmissionController",
    "BreakerOpenError",
    "CancelToken",
    "ChaosError",
    "ChaosInjector",
    "ChaosProxy",
    "ChaosSpec",
    "CircuitBreaker",
    "DeadlineExceeded",
    "FlakyBackend",
    "ServiceOverloadError",
]
