"""Chaos harness: seeded hangs, crashes, slow-downs, and error bursts.

The online counterpart of :class:`repro.hardware.faults.FlakyDevice`:
where that injects probe faults under the *measurement* layer, this
module injects dispatch faults under the *serving* stack —

* :class:`FlakyBackend` wraps any
  :class:`~repro.parallel.EvaluationBackend`-shaped object and faults
  its ``map`` dispatches (backend layer);
* :class:`ChaosProxy` wraps any client-shaped object and faults its
  ``request_raw`` transport (HTTP layer);
* :class:`ChaosInjector` is the shared engine behind both, driven by a
  :class:`repro.hardware.faults.FaultStream` so every fault sequence is
  seeded and replayable — the ``serve_chaos`` bench and CI job assert
  *deterministic* shedding/degradation under a fixed chaos seed.

Specs are compact strings so the daemon can be started straight into a
storm: ``--chaos "seed=7,error=0.3,burst=2,hang=0.1,hang_s=2"``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from http.client import RemoteDisconnected
from typing import Callable, Optional


class ChaosError(RuntimeError):
    """An injected backend crash (the chaos analogue of ProbeError)."""


_SPEC_KEYS = {
    "seed": ("seed", int),
    "error": ("error_rate", float),
    "hang": ("hang_rate", float),
    "hang_s": ("hang_s", float),
    "slow": ("slow_rate", float),
    "slow_s": ("slow_s", float),
    "reset": ("reset_rate", float),
    "burst": ("burst", int),
    "fail_first": ("fail_first", int),
}


@dataclass(frozen=True)
class ChaosSpec:
    """What to inject, how often, and from which seed.

    Rates are per dispatch decision: ``error_rate`` raises
    :class:`ChaosError` (in bursts of ``burst`` consecutive
    dispatches), ``hang_rate`` stalls for ``hang_s`` seconds (``0`` =
    hang forever — only survivable under a watchdog), ``slow_rate``
    sleeps ``slow_s`` then proceeds. ``reset_rate`` applies to the
    transport stream (:meth:`ChaosInjector.transport_fault`), and
    ``fail_first`` deterministically faults the first N transport
    attempts — the fail-twice-then-succeed client-retry fixture.
    """

    seed: int = 0
    error_rate: float = 0.0
    hang_rate: float = 0.0
    hang_s: float = 30.0
    slow_rate: float = 0.0
    slow_s: float = 0.1
    reset_rate: float = 0.0
    burst: int = 1
    fail_first: int = 0

    def __post_init__(self) -> None:
        for rate in (self.error_rate, self.hang_rate, self.slow_rate,
                     self.reset_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("chaos rates must be in [0, 1]")
        if self.error_rate + self.hang_rate + self.slow_rate > 1.0:
            raise ValueError("error + hang + slow rates must sum to <= 1")
        if self.hang_s < 0 or self.slow_s < 0:
            raise ValueError("hang_s and slow_s must be >= 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.fail_first < 0:
            raise ValueError("fail_first must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "ChaosSpec":
        """``"error=0.3,burst=2,hang=0.1,hang_s=2,seed=7"`` -> spec."""
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            if not sep or key.strip() not in _SPEC_KEYS:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise ValueError(
                    f"bad chaos spec item {part!r}; expected key=value "
                    f"with key in {{{known}}}"
                )
            field_name, cast = _SPEC_KEYS[key.strip()]
            try:
                kwargs[field_name] = cast(raw.strip())
            except ValueError as exc:
                raise ValueError(
                    f"bad chaos spec value in {part!r}: {exc}"
                ) from exc
        return cls(**kwargs)

    def injector(
        self, sleep: Callable[[float], None] = time.sleep
    ) -> "ChaosInjector":
        return ChaosInjector(self, sleep=sleep)


class ChaosInjector:
    """The seeded fault engine one harness run shares.

    Thread-safe: decisions (rng draws, burst bookkeeping) happen under
    a lock; the injected sleeps happen outside it so a hang stalls only
    the dispatch it was injected into.
    """

    def __init__(
        self, spec: ChaosSpec, sleep: Callable[[float], None] = time.sleep
    ):
        # Local import: keeps repro.resilience a stdlib-only leaf (the
        # worker pool imports it, and the fault-stream home package
        # pulls in the whole hardware model).
        from repro.hardware.faults import FaultStream

        self.spec = spec
        self._sleep = sleep
        self._lock = threading.Lock()
        self._stream = FaultStream(seed=spec.seed)
        # The transport stream is separate (seed offset by 1) so HTTP
        # faults do not perturb the backend fault sequence.
        self._transport = FaultStream(
            seed=spec.seed + 1, fail_first=spec.fail_first
        )
        self._burst_left = 0
        # Observability.
        self.dispatches = 0
        self.injected_errors = 0
        self.injected_hangs = 0
        self.injected_slowdowns = 0
        self.injected_resets = 0

    # -- backend-layer faults -----------------------------------------------------

    def inject(self) -> None:
        """One dispatch decision: raise, stall, slow down, or pass."""
        with self._lock:
            self.dispatches += 1
            if self._burst_left > 0:
                self._burst_left -= 1
                self.injected_errors += 1
                raise ChaosError(
                    f"injected error burst (dispatch #{self.dispatches})"
                )
            kind = self._stream.decide(
                (
                    ("error", self.spec.error_rate),
                    ("hang", self.spec.hang_rate),
                    ("slow", self.spec.slow_rate),
                )
            )
            if kind == "error":
                self._burst_left = self.spec.burst - 1
                self.injected_errors += 1
                raise ChaosError(
                    f"injected error (dispatch #{self.dispatches})"
                )
            if kind == "hang":
                self.injected_hangs += 1
            elif kind == "slow":
                self.injected_slowdowns += 1
        if kind == "hang":
            if self.spec.hang_s > 0:
                self._sleep(self.spec.hang_s)
            else:
                # An intentionally-infinite stall: the one wait in the
                # stack that must NOT be bounded, because it simulates
                # the hung worker the watchdog exists to kill. Carries
                # the lint_baseline.json entry for RL109.
                threading.Event().wait()
        elif kind == "slow":
            self._sleep(self.spec.slow_s)

    # -- transport-layer faults ---------------------------------------------------

    def transport_fault(self) -> None:
        """Maybe raise a transient connection fault (seeded stream).

        Alternates the two transient shapes a real daemon restart
        produces — ``ConnectionResetError`` and ``RemoteDisconnected``
        — so client retry handling is exercised against both.
        """
        with self._lock:
            kind = self._transport.decide(
                (("reset", self.spec.reset_rate),),
                fail_first_outcome="reset",
            )
            if kind != "reset":
                return
            self.injected_resets += 1
            count = self.injected_resets
        if count % 2 == 0:
            raise RemoteDisconnected(f"injected disconnect (#{count})")
        raise ConnectionResetError(f"injected reset (#{count})")

    def transport_hook(self) -> Callable[[], None]:
        """The :class:`repro.serve.ServeClient` ``fault_hook`` form."""
        return self.transport_fault

    # -- observability ------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "dispatches": self.dispatches,
                "injected_errors": self.injected_errors,
                "injected_hangs": self.injected_hangs,
                "injected_slowdowns": self.injected_slowdowns,
                "injected_resets": self.injected_resets,
            }


class FlakyBackend:
    """An :class:`~repro.parallel.EvaluationBackend` wrapper that faults
    dispatches from a seeded chaos stream.

    Duck-typed (not a subclass) so it can wrap any backend-shaped
    object — serial, multiprocess, tabular — without importing the
    backend layer. On healthy dispatches it delegates untouched, so a
    zero-rate spec is bit-identical to the bare backend.
    """

    def __init__(
        self,
        inner,
        spec: Optional[ChaosSpec] = None,
        injector: Optional[ChaosInjector] = None,
    ):
        if (spec is None) == (injector is None):
            raise ValueError(
                "FlakyBackend requires exactly one of spec or injector"
            )
        self.inner = inner
        self.injector = injector if injector is not None else spec.injector()

    @property
    def name(self) -> str:
        return f"flaky[{getattr(self.inner, 'name', 'backend')}]"

    @property
    def cache(self):
        return getattr(self.inner, "cache", None)

    def map(self, archs):
        self.injector.inject()
        return self.inner.map(archs)

    def evaluate_many(self, archs):
        cache = self.cache
        if cache is not None:
            return cache.get_or_eval_many(archs, self.map)
        return self.map(archs)

    def set_cancel(self, token) -> None:
        if hasattr(self.inner, "set_cancel"):
            self.inner.set_cancel(token)

    def sync(self, module=None) -> str:
        return self.inner.sync(module)

    def stats(self) -> dict:
        out = dict(self.inner.stats())
        out["backend"] = self.name
        out["chaos"] = self.injector.snapshot()
        return out

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "FlakyBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ChaosProxy:
    """A client-shaped wrapper that faults the HTTP transport.

    Wraps anything exposing ``request_raw(method, path, body=None)``
    (e.g. :class:`repro.serve.ServeClient`) and injects transient
    connection faults *in front of* it — the caller sees the fault, so
    this exercises caller-side handling. To exercise the client's own
    retry loop instead, hand :meth:`ChaosInjector.transport_hook` to
    ``ServeClient(fault_hook=...)``, which injects inside the retried
    attempt.
    """

    def __init__(
        self,
        client,
        spec: Optional[ChaosSpec] = None,
        injector: Optional[ChaosInjector] = None,
    ):
        if (spec is None) == (injector is None):
            raise ValueError(
                "ChaosProxy requires exactly one of spec or injector"
            )
        self.client = client
        self.injector = injector if injector is not None else spec.injector()

    def request_raw(self, method: str, path: str, body=None):
        self.injector.transport_fault()
        return self.client.request_raw(method, path, body)

    def __getattr__(self, name: str):
        # Everything else (health/metrics/...) delegates untouched;
        # only request_raw calls made *on the proxy* are faulted.
        return getattr(self.client, name)


__all__ = [
    "ChaosError",
    "ChaosInjector",
    "ChaosProxy",
    "ChaosSpec",
    "FlakyBackend",
]
