"""Circuit breaker: stop hammering a backend that is failing or hanging.

Standard three-state machine around an evaluation backend:

* **closed** — normal operation; outcomes are recorded.
* **open** — too many failures (consecutive, windowed-rate, or
  hang-timeout breaches); every :meth:`CircuitBreaker.allow` is denied
  until the cooldown elapses. The serving layer answers from a
  *degraded* fallback (tabular replay / nearest cached front) instead
  of queueing more work behind a sick backend.
* **half-open** — cooldown elapsed; exactly one trial request is let
  through. Success closes the breaker, failure re-opens it with a
  fresh cooldown.

The breaker never samples randomness and is driven by an injectable
clock, so breaker trips are deterministic in the outcome sequence.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Optional


class ServiceOverloadError(RuntimeError):
    """The service cannot take this request right now; retry later."""


class BreakerOpenError(ServiceOverloadError):
    """The circuit is open: live computations are suspended."""


class CircuitBreaker:
    """Failure-rate / hang-timeout circuit breaker (closed/open/half-open).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    failure_rate:
        Windowed trip condition: the breaker also opens when at least
        ``min_samples`` of the last ``window`` outcomes are recorded
        and the failure fraction reaches this rate.
    window, min_samples:
        Size and fill requirement of the outcome window.
    cooldown_s:
        How long the breaker stays open before probing (half-open).
    hang_timeout_s:
        Optional hang budget: callers report each computation's
        wall-clock via :meth:`record_success`'s ``elapsed_s`` (or
        :meth:`record_failure` with ``hang=True``); a computation that
        exceeds the budget counts as a failure even when it eventually
        returned — a backend that answers in minutes is down for
        serving purposes.
    clock:
        Injectable monotonic clock for tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        failure_rate: float = 0.5,
        window: int = 16,
        min_samples: int = 8,
        cooldown_s: float = 30.0,
        hang_timeout_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if window < 1 or min_samples < 1 or min_samples > window:
            raise ValueError("need 1 <= min_samples <= window")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if hang_timeout_s is not None and hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.failure_rate = failure_rate
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self.hang_timeout_s = hang_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._trial_in_flight = False
        self._consecutive_failures = 0
        self._window: Deque[int] = deque(maxlen=window)
        # Counters (all mutated under the lock).
        self.successes = 0
        self.failures = 0
        self.hang_failures = 0
        self.opens = 0
        self.rejected = 0
        self.half_open_trials = 0

    # -- gate ---------------------------------------------------------------------

    def allow(self) -> bool:
        """Whether a live computation may be dispatched right now."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = self.HALF_OPEN
                    self._trial_in_flight = True
                    self.half_open_trials += 1
                    return True
                self.rejected += 1
                return False
            # HALF_OPEN: one trial at a time.
            if self._trial_in_flight:
                self.rejected += 1
                return False
            self._trial_in_flight = True
            self.half_open_trials += 1
            return True

    # -- outcome recording --------------------------------------------------------

    def record_success(self, elapsed_s: Optional[float] = None) -> None:
        """A dispatch returned. A return slower than the hang budget
        still counts as a failure — the result is served (it is
        correct), but the backend's health record takes the hit."""
        if (
            self.hang_timeout_s is not None
            and elapsed_s is not None
            and elapsed_s >= self.hang_timeout_s
        ):
            self.record_failure(hang=True)
            return
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._window.append(0)
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._trial_in_flight = False
                self._window.clear()

    def record_failure(self, hang: bool = False) -> None:
        with self._lock:
            self.failures += 1
            if hang:
                self.hang_failures += 1
            self._consecutive_failures += 1
            self._window.append(1)
            tripped = self._state == self.HALF_OPEN
            if not tripped and self._state == self.CLOSED:
                tripped = (
                    self._consecutive_failures >= self.failure_threshold
                )
                if not tripped and len(self._window) >= self.min_samples:
                    rate = sum(self._window) / len(self._window)
                    tripped = rate >= self.failure_rate
            if tripped:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._trial_in_flight = False
                self.opens += 1

    # -- observability ------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "successes": self.successes,
                "failures": self.failures,
                "hang_failures": self.hang_failures,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "rejected": self.rejected,
                "half_open_trials": self.half_open_trials,
            }


__all__ = ["BreakerOpenError", "CircuitBreaker", "ServiceOverloadError"]
