"""Admission control: a bounded request queue with load shedding.

Saturation policy for the daemon: at most ``capacity`` requests are in
flight at once; up to ``queue_depth`` more wait (bounded, with a
timeout); everything beyond that is *shed immediately* with a
deterministic retry hint. Shedding the excess is what keeps latency
bounded for everyone already admitted — an unbounded queue degrades
every request a little until all of them miss their deadlines.

Shed decisions are deterministic in the arrival order the OS presents:
the controller never samples randomness, so a replayed overload trace
sheds exactly the same requests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Tuple

# How often a queued waiter re-checks its caller's CancelToken. Purely
# a detection latency for deadline-expiry-while-queued; admissions are
# signalled via the condition variable, not this poll.
_QUEUE_POLL_S = 0.05


class AdmissionController:
    """Bounded in-flight + bounded queue; everything else is shed.

    Parameters
    ----------
    capacity:
        Maximum concurrently admitted requests. ``None`` disables
        limiting (every request is admitted; counters still record).
    queue_depth:
        Maximum requests waiting for a slot. ``0`` = shed immediately
        when at capacity.
    queue_timeout_s:
        How long a queued request waits before being shed.
    clock:
        Injectable monotonic clock for tests.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        queue_depth: int = 16,
        queue_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        self.capacity = capacity
        self.queue_depth = queue_depth
        self.queue_timeout_s = queue_timeout_s
        self._clock = clock
        self._cond = threading.Condition(threading.Lock())
        self.in_flight = 0
        self.waiting = 0
        # Counters (all mutated under the condition's lock).
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_queue_timeout = 0
        self.shed_deadline = 0
        self.peak_in_flight = 0
        self.peak_waiting = 0

    # -- admission ----------------------------------------------------------------

    def try_admit(self, cancel=None) -> Tuple[bool, Optional[str]]:
        """``(admitted, shed_reason)`` — blocks at most the queue timeout.

        ``shed_reason`` is ``None`` on admission, else one of
        ``"queue_full"``, ``"queue_timeout"``, or ``"deadline"`` (the
        caller's :class:`~repro.resilience.deadline.CancelToken` expired
        while queued — answered as a 504, not a shed).
        """
        with self._cond:
            if self.capacity is not None and self.in_flight >= self.capacity:
                if self.waiting >= self.queue_depth:
                    self.shed_queue_full += 1
                    return False, "queue_full"
                self.waiting += 1
                self.peak_waiting = max(self.peak_waiting, self.waiting)
                give_up = self._clock() + self.queue_timeout_s
                try:
                    while self.in_flight >= self.capacity:
                        if cancel is not None and cancel.expired:
                            self.shed_deadline += 1
                            return False, "deadline"
                        remaining = give_up - self._clock()
                        if remaining <= 0:
                            self.shed_queue_timeout += 1
                            return False, "queue_timeout"
                        wait_s = remaining
                        if cancel is not None:
                            wait_s = min(wait_s, _QUEUE_POLL_S)
                        self._cond.wait(timeout=wait_s)
                finally:
                    self.waiting -= 1
            self.in_flight += 1
            self.admitted += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
            return True, None

    def release(self) -> None:
        """One admitted request finished; wake one queued waiter."""
        with self._cond:
            self.in_flight -= 1
            self._cond.notify()

    # -- observability ------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "capacity": self.capacity,
                "queue_depth": self.queue_depth,
                "in_flight": self.in_flight,
                "waiting": self.waiting,
                "admitted": self.admitted,
                "shed_queue_full": self.shed_queue_full,
                "shed_queue_timeout": self.shed_queue_timeout,
                "shed_deadline": self.shed_deadline,
                "peak_in_flight": self.peak_in_flight,
                "peak_waiting": self.peak_waiting,
            }


__all__ = ["AdmissionController"]
