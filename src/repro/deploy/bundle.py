"""Model bundles: one-file serialization of a deployable subnet.

The bundle holds the supernet's parameters, every batch-norm's running
statistics, the activated architecture, and the space configuration —
enough to reconstruct an inference-ready model with
:func:`load_bundle` and nothing else.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.layers.norm import BatchNorm2d
from repro.runstate.atomic import atomic_path
from repro.space.architecture import Architecture
from repro.space.config import SpaceConfig, StageSpec
from repro.space.search_space import SearchSpace
from repro.supernet.model import Supernet

_META_KEY = "__bundle_meta__"


def _config_to_dict(config: SpaceConfig) -> dict:
    return {
        "name": config.name,
        "input_size": config.input_size,
        "input_channels": config.input_channels,
        "num_classes": config.num_classes,
        "stem_channels": config.stem_channels,
        "stages": [[s.num_blocks, s.channels] for s in config.stages],
        "head_channels": config.head_channels,
        "channel_factors": list(config.channel_factors),
    }


def _config_from_dict(payload: dict) -> SpaceConfig:
    return SpaceConfig(
        name=payload["name"],
        input_size=payload["input_size"],
        input_channels=payload["input_channels"],
        num_classes=payload["num_classes"],
        stem_channels=payload["stem_channels"],
        stages=tuple(StageSpec(n, c) for n, c in payload["stages"]),
        head_channels=payload["head_channels"],
        channel_factors=tuple(payload["channel_factors"]),
    )


def _bn_stats(model: Supernet) -> dict:
    stats = {}
    for i, module in enumerate(model.modules()):
        if isinstance(module, BatchNorm2d):
            stats[f"bn{i}.running_mean"] = module.running_mean
            stats[f"bn{i}.running_var"] = module.running_var
    return stats


def _restore_bn_stats(model: Supernet, data) -> None:
    for i, module in enumerate(model.modules()):
        if isinstance(module, BatchNorm2d):
            module.running_mean = np.array(data[f"bn{i}.running_mean"])
            module.running_var = np.array(data[f"bn{i}.running_var"])


def export_bundle(
    supernet: Supernet, arch: Architecture, path: Union[str, Path]
) -> Path:
    """Write a deployable bundle to ``path`` (``.npz`` appended if missing)."""
    if not supernet.space.contains(arch):
        raise ValueError("architecture is not part of the supernet's space")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")

    meta = json.dumps(
        {
            "architecture": arch.to_dict(),
            "space_config": _config_to_dict(supernet.space.config),
            "format_version": 1,
        }
    )
    arrays = {f"param::{k}": v for k, v in supernet.state_dict().items()}
    arrays.update(_bn_stats(supernet))
    arrays[_META_KEY] = np.array(meta)
    # np.savez needs a filename, so the atomic recipe uses a temp path
    # in the destination directory and renames over `path` on success.
    with atomic_path(path, suffix=".npz") as tmp:
        np.savez(tmp, **arrays)
    return path


def load_bundle(path: Union[str, Path]) -> Supernet:
    """Reconstruct an inference-ready model from a bundle.

    The returned supernet has the bundle's weights and BN statistics
    loaded, the bundled architecture activated, and is in eval mode.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ValueError(f"{path} is not a repro model bundle")
        meta = json.loads(str(data[_META_KEY]))
        config = _config_from_dict(meta["space_config"])
        arch = Architecture.from_dict(meta["architecture"])

        space = SearchSpace(config)
        model = Supernet(space, seed=0)
        state = {
            key[len("param::"):]: np.array(value)
            for key, value in data.items()
            if key.startswith("param::")
        }
        model.load_state_dict(state)
        _restore_bn_stats(model, data)

    model.set_architecture(arch)
    model.eval()
    return model
