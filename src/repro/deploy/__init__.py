"""Deployment utilities: model bundles and post-training quantization.

A discovered HSCoNet eventually ships to the target device. This
package provides the last-mile pieces a user needs:

* :mod:`repro.deploy.bundle` — serialize a (supernet, architecture)
  pair into a single ``.npz`` bundle (weights + BN statistics +
  architecture + space config) and load it back, with nothing shared
  with the original objects.
* :mod:`repro.deploy.quantize` — simulated symmetric post-training
  quantization (per-output-channel for conv/linear weights), with an
  accuracy-drop evaluation on the proxy task. Edge deployments almost
  always quantize; the simulation shows how HSCoNets tolerate it.
"""

from repro.deploy.bundle import export_bundle, load_bundle
from repro.deploy.quantize import (
    QuantizationReport,
    fake_quantize_array,
    quantize_model_weights,
)

__all__ = [
    "export_bundle",
    "load_bundle",
    "fake_quantize_array",
    "quantize_model_weights",
    "QuantizationReport",
]
