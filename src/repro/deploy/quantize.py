"""Simulated post-training weight quantization.

Symmetric fake quantization: weights are rounded to a ``bits``-wide
signed integer grid (per-output-channel scales for convolutions and
linear layers, per-tensor for everything else) and immediately
dequantized, so the model still runs in float but carries exactly the
information an integer deployment would. This is the standard way to
estimate INT8/INT4 accuracy impact without an integer kernel library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.module import Module
from repro.nn.quantized import symmetric_scales


@dataclass(frozen=True)
class QuantizationReport:
    """What quantization did to each parameter tensor."""

    bits: int
    tensors_quantized: int
    max_abs_error: float
    mean_abs_error: float
    per_layer_error: Dict[str, float]

    def __str__(self) -> str:
        return (
            f"int{self.bits}: {self.tensors_quantized} tensors, "
            f"max |err| {self.max_abs_error:.3e}, "
            f"mean |err| {self.mean_abs_error:.3e}"
        )


def fake_quantize_array(
    values: np.ndarray, bits: int = 8, per_channel_axis: int = -1
) -> np.ndarray:
    """Symmetric fake quantization of one tensor.

    ``per_channel_axis >= 0`` computes one scale per slice along that
    axis (the output-channel axis for conv/linear weights); ``-1`` uses
    a single per-tensor scale. Scales come from
    :func:`repro.nn.quantized.symmetric_scales`, the same helper the
    search-time int8 eval kernels use, so deployment quantization and
    the eval fast path land on the identical grid.
    """
    scales = symmetric_scales(values, bits=bits,
                              per_channel_axis=per_channel_axis)
    if per_channel_axis >= 0:
        moved = np.moveaxis(values, per_channel_axis, 0)
        flat = moved.reshape(moved.shape[0], -1)
        quantized = np.round(flat / scales[:, None]) * scales[:, None]
        return np.moveaxis(
            quantized.reshape(moved.shape), 0, per_channel_axis
        )
    return np.round(values / float(scales)) * float(scales)


def quantize_model_weights(model: Module, bits: int = 8) -> QuantizationReport:
    """Fake-quantize all conv/linear weights of a model, in place.

    Biases and batch-norm parameters stay in float (as real integer
    runtimes keep them in int32/float). Returns a report of the
    introduced error per layer.
    """
    per_layer: Dict[str, float] = {}
    errors: List[float] = []
    count = 0
    for idx, module in enumerate(model.modules()):
        if isinstance(module, (Conv2d, Linear)):
            original = module.weight.data
            quantized = fake_quantize_array(original, bits=bits,
                                            per_channel_axis=0)
            err = np.abs(quantized - original)
            name = f"{type(module).__name__.lower()}{idx}"
            per_layer[name] = float(err.max())
            errors.append(err.mean())
            module.weight.data = quantized
            count += 1
    if count == 0:
        raise ValueError("model has no conv/linear weights to quantize")
    return QuantizationReport(
        bits=bits,
        tensors_quantized=count,
        max_abs_error=max(per_layer.values()),
        mean_abs_error=float(np.mean(errors)),
        per_layer_error=per_layer,
    )
