"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the workflows a downstream user runs most:

* ``search``  — one HSCoNAS pipeline run; prints the summary and writes
  a JSON artifact (architecture, metrics, per-generation history).
* ``shrink``  — progressive space shrinking only (Sec. III-C); writes
  the full decision trace with cache statistics.
* ``predict`` — build and evaluate the latency predictor on a device;
  writes the LUT JSON next to the report.
* ``table1``  — regenerate the Table-I comparison (baselines +
  HSCoNets) and write it as text and CSV.
* ``front``   — NSGA-II accuracy/latency Pareto front; writes CSV.
* ``tabulate`` — precompute a columnar tabular artifact (per-device
  latency + accuracy for every architecture) for instant replay.
* ``sweep``   — replay hundreds of (seed, target, device) search
  scenarios against a tabular artifact; writes variance bands.

All artifacts land in ``--out`` (default ``./results``) and are written
atomically (write-then-rename), so a crash never leaves a torn file.
The evaluation-heavy commands (``search``, ``shrink``, ``predict``,
``front``) accept ``--workers N`` to fan evaluation across N worker
processes and ``--backend`` to pick the evaluation backend explicitly
(``auto``, the default, resolves from ``--workers``) — results are
bit-identical either way (see ``docs/parallel.md`` and
``docs/performance.md``). ``search`` and ``front`` additionally accept
``--backend tabular --table DIR`` to replay against a prebuilt
artifact instead of evaluating live — same bytes when the artifact was
built with the matching recipe and seed, orders of magnitude faster.

``search``, ``shrink``, and ``front`` additionally accept ``--run-dir
DIR`` (start a new crash-safe checkpointed run) and ``--resume DIR``
(continue a killed one, bit-exact); see ``docs/robustness.md``. Run-
state problems — a corrupt checkpoint, a ``--resume`` directory that
does not exist or was started under different settings — exit with
code 2 and a one-line actionable message, never a traceback.

``search`` and ``front`` accept ``--deadline-ms MS``, a cooperative
wall-clock budget (:class:`repro.resilience.CancelToken`, the same
token the serving daemon propagates): a run that overruns it stops
within one generation, prints a one-line partial-progress message, and
exits with code 3. A run that finishes under its deadline is
bit-identical to the same run without one.

The long-running search-as-a-service daemon is a separate entry point:
``python -m repro.serve`` (see ``docs/serving.md``). Its served fronts
are bit-identical to ``repro front`` because both run the shared
recipe in :mod:`repro.serve.pipeline`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.accuracy import AccuracySurrogate
from repro.core import (
    EvolutionConfig,
    HSCoNAS,
    HSCoNASConfig,
)
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler
from repro.hardware.calibration import calibrated_devices
from repro.report.figures import series_to_csv
from repro.resilience import CancelToken, DeadlineExceeded
from repro.runstate import (
    PhaseCheckpoint,
    RunDir,
    RunStateError,
    atomic_write_json,
    atomic_write_text,
)
from repro.space import LAYOUT_NAMES, SearchSpace, space_for_layout


def _space(layout: str) -> SearchSpace:
    try:
        return space_for_layout(layout)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _ensure_out(path: str) -> Path:
    out = Path(path)
    out.mkdir(parents=True, exist_ok=True)
    return out


def _cancel_token(args: argparse.Namespace) -> Optional[CancelToken]:
    """The ``--deadline-ms`` token for this invocation, or ``None``."""
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is None:
        return None
    if deadline_ms <= 0:
        raise SystemExit("--deadline-ms must be positive")
    return CancelToken.after_ms(deadline_ms)


def _run_state(
    args: argparse.Namespace,
    kind: str,
    config: dict,
    phase_order: Sequence[str],
) -> Optional[RunDir]:
    """The run directory for a checkpointed invocation, or ``None``.

    ``--run-dir`` starts a fresh directory (refusing to clobber an
    existing run); ``--resume`` opens an existing one, verifying the
    run kind and the identity-relevant config keys (``workers`` is
    deliberately absent from ``config``: it is wall-clock-only, so a
    run may be resumed with a different worker count).
    """
    run_dir = getattr(args, "run_dir", None)
    resume = getattr(args, "resume", None)
    if run_dir and resume:
        raise RunStateError(
            "pass either --run-dir (new run) or --resume (continue), not both"
        )
    if resume:
        return RunDir.open(resume, expect_kind=kind, expect_config=config)
    if run_dir:
        return RunDir.create(run_dir, kind, config, phase_order)
    return None


def _checkpointed_lut_predictor(
    run_state: Optional[RunDir],
    space: SearchSpace,
    build,
) -> LatencyPredictor:
    """Build (or restore) the ``predictor`` phase of a run directory.

    ``build()`` does the actual work and returns the calibrated
    predictor; its LUT and bias are checkpointed so a resumed run skips
    straight past stage 1.
    """
    if run_state is None:
        return build()
    checkpoint = PhaseCheckpoint(run_state, "predictor")
    saved = checkpoint.load()
    if saved is not None and checkpoint.is_complete():
        lut = LatencyLUT.from_json(saved["lut"])
        predictor = LatencyPredictor(
            lut, space, bias_ms=float(saved["bias_ms"])
        )
        predictor.calibrated = True
        return predictor
    predictor = build()
    checkpoint.save(
        {
            "format": 1,
            "lut": predictor.lut.to_json(),
            "bias_ms": predictor.bias_ms,
        },
        complete=True,
    )
    return predictor


def cmd_search(args: argparse.Namespace) -> int:
    space = _space(args.layout)
    device = calibrated_devices()[args.device]
    config = HSCoNASConfig(
        target_ms=args.target,
        seed=args.seed,
        evolution=EvolutionConfig(seed=args.seed),
        workers=args.workers,
        backend=args.backend,
        table=args.table,
        # Replay the latency column matching the requested device.
        table_device=args.device if args.table else None,
    )
    run_state = _run_state(
        args,
        "search",
        {
            "device": args.device,
            "layout": args.layout,
            "target_ms": args.target,
            "seed": args.seed,
        },
        HSCoNAS.PHASES,
    )
    result = HSCoNAS(space, device, config).run(
        run_state=run_state, cancel=_cancel_token(args)
    )
    print(result.summary())

    out = _ensure_out(args.out)
    artifact = {
        "device": args.device,
        "layout": args.layout,
        "target_ms": args.target,
        "seed": args.seed,
        "workers": args.workers,
        "backend": args.backend,
        "table": args.table,
        "architecture": result.arch.to_dict(),
        "top1_error": result.top1_error,
        "top5_error": result.top5_error,
        "predicted_latency_ms": result.predicted_latency_ms,
        "measured_latency_ms": result.measured_latency_ms,
        "bias_ms": result.bias_ms,
        "cache_stats": result.search.cache_stats,
        "shrink": result.shrink.to_dict() if result.shrink else None,
        "degradation": (
            result.degradation.to_dict() if result.degradation else None
        ),
        "generations": [
            {
                "index": g.index,
                "best_score": g.best.score,
                "best_latency_ms": g.best.latency_ms,
            }
            for g in result.search.generations
        ],
    }
    path = out / f"search_{args.device}_{args.layout}_{args.target:g}ms.json"
    atomic_write_json(path, artifact)
    print(f"\nartifact written to {path}")
    return 0


def cmd_shrink(args: argparse.Namespace) -> int:
    from repro.core import (
        EvaluatedArch,
        EvaluationCache,
        Objective,
        ProgressiveSpaceShrinking,
        SubspaceQuality,
    )
    from repro.parallel import create_backend

    space = _space(args.layout)
    device = calibrated_devices()[args.device]
    surrogate = AccuracySurrogate(space)
    run_state = _run_state(
        args,
        "shrink",
        {
            "device": args.device,
            "layout": args.layout,
            "target_ms": args.target,
            "quality_samples": args.quality_samples,
            "seed": args.seed,
        },
        ("predictor", "shrink"),
    )

    def build_predictor() -> LatencyPredictor:
        lut = LatencyLUT.build(
            space, device, samples_per_cell=3, seed=args.seed,
            workers=args.workers, backend=args.backend,
        )
        predictor = LatencyPredictor(lut, space)
        profiler = OnDeviceProfiler(device, seed=args.seed)
        predictor.calibrate_bias(
            space, profiler, num_archs=25, seed=args.seed + 1
        )
        return predictor

    predictor = _checkpointed_lut_predictor(run_state, space, build_predictor)
    objective = Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=args.target,
        latency_many_fn=predictor.predict_many,
    )

    cache = EvaluationCache()
    shrink_ckpt = None
    if run_state is not None:
        shrink_ckpt = PhaseCheckpoint(
            run_state,
            "shrink",
            extra_save=lambda: {
                "cache": cache.snapshot(lambda e: e.to_dict())
            },
            extra_restore=lambda state: cache.restore(
                state["cache"], EvaluatedArch.from_dict
            ),
        )
    with create_backend(
        args.backend, objective.evaluate_many, workers=args.workers,
        cache=cache,
    ) as evaluator:
        quality = SubspaceQuality(
            objective,
            num_samples=args.quality_samples,
            seed=args.seed + 2,
            cache=cache,
            evaluator=evaluator,
        )
        result = ProgressiveSpaceShrinking(
            quality, checkpoint=shrink_ckpt
        ).run(space)
        dispatch_stats = evaluator.stats()

    removed = sum(result.orders_of_magnitude_removed())
    print(
        f"shrunk 10^{result.initial_log10_size:.1f} -> "
        f"10^{result.stage_log10_sizes[-1]:.1f} architectures "
        f"(-{removed:.1f} orders of magnitude, "
        f"{result.quality_evaluations} quality evaluations)"
    )
    for stage in result.stages:
        for d in stage:
            print(
                f"  layer {d.layer:2d}: fixed op {d.chosen_op} "
                f"(margin {d.margin():.4f})"
            )
    if result.cache_stats is not None:
        print(f"cache: {result.cache_stats}")

    out = _ensure_out(args.out)
    artifact = result.to_dict()
    artifact.update(
        {
            "device": args.device,
            "layout": args.layout,
            "target_ms": args.target,
            "seed": args.seed,
            "workers": args.workers,
            "backend": args.backend,
            "dispatch_stats": dispatch_stats,
        }
    )
    path = out / f"shrink_{args.device}_{args.layout}_{args.target:g}ms.json"
    atomic_write_json(path, artifact)
    print(f"\ntrace written to {path}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    space = _space(args.layout)
    device = calibrated_devices()[args.device]
    lut = LatencyLUT.build(
        space, device, samples_per_cell=3, seed=args.seed,
        workers=args.workers, backend=args.backend,
    )
    predictor = LatencyPredictor(lut, space)
    profiler = OnDeviceProfiler(device, seed=args.seed + 1)
    bias = predictor.calibrate_bias(space, profiler, num_archs=40,
                                    seed=args.seed + 2)
    rng = np.random.default_rng(args.seed + 3)
    holdout = [space.sample(rng) for _ in range(40)]
    report = predictor.evaluate(space, profiler, holdout)
    print(f"bias B = {bias:+.2f} ms")
    print(report)

    out = _ensure_out(args.out)
    lut_path = out / f"lut_{args.device}_{args.layout}.json"
    atomic_write_text(lut_path, lut.to_json() + "\n")
    print(f"LUT written to {lut_path}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.baselines import all_baselines
    from repro.report import TableRow, render_table1
    from repro.report.tables import render_markdown

    devices = calibrated_devices()
    rows: List[TableRow] = []
    for model in all_baselines():
        net = model.build()
        rows.append(
            TableRow(
                name=model.name,
                group=model.group,
                top1_error=model.published.top1_error,
                top5_error=model.published.top5_error,
                latency_gpu_ms=devices["gpu"].run_network_ms(net.layers),
                latency_cpu_ms=devices["cpu"].run_network_ms(net.layers),
                latency_edge_ms=devices["edge"].run_network_ms(net.layers),
            )
        )

    targets = {"gpu": 9.0, "cpu": 22.5, "edge": 34.0}
    if not args.baselines_only:
        space = _space("a")
        surrogate = AccuracySurrogate(space)
        for key, target in targets.items():
            result = HSCoNAS(
                space, devices[key],
                HSCoNASConfig(target_ms=target, seed=args.seed),
                surrogate=surrogate,
            ).run()
            lats = {
                k: OnDeviceProfiler(devices[k], seed=11).measure_ms(
                    space, result.arch
                )
                for k in targets
            }
            rows.append(
                TableRow(
                    name=f"HSCoNet-{key.upper()}-A",
                    group="hsconas",
                    top1_error=round(result.top1_error, 1),
                    top5_error=result.top5_error,
                    latency_gpu_ms=lats["gpu"],
                    latency_cpu_ms=lats["cpu"],
                    latency_edge_ms=lats["edge"],
                )
            )

    text = render_table1(rows)
    print(text)
    out = _ensure_out(args.out)
    atomic_write_text(out / "table1.txt", text + "\n")
    atomic_write_text(out / "table1.md", render_markdown(rows) + "\n")
    print(f"\nartifacts written to {out}/table1.txt and table1.md")
    return 0


def _replay_front(args: argparse.Namespace, space: SearchSpace):
    """The ``front`` command's tabular-replay path (no live predictor).

    Bit-identical to the live path when the artifact was built with the
    ``"front"`` recipe at this seed (the CI replay gate proves it);
    misconfigurations fail loudly before any search runs.
    """
    from repro.serve.pipeline import replay_front_search
    from repro.tabular import load_artifact

    if args.table is None:
        raise SystemExit(
            "--backend tabular replays a prebuilt artifact; pass "
            "--table DIR (build one with `repro tabulate`)"
        )
    if args.run_dir or args.resume:
        raise SystemExit(
            "--run-dir/--resume checkpoint live searches; a tabular "
            "replay finishes in milliseconds and takes no checkpoints"
        )
    table = load_artifact(args.table, space=space)
    if not table.exhaustive:
        raise SystemExit(
            f"front replay needs an exhaustive table; {args.table} "
            f"holds {len(table)} architectures — rebuild with "
            "`repro tabulate --num-archs 0`"
        )
    return replay_front_search(space, table, args.device, seed=args.seed)


def cmd_front(args: argparse.Namespace) -> int:
    from repro.core import BiObjective, EvaluationCache
    from repro.serve.pipeline import build_front_predictor, front_search

    space = _space(args.layout)
    if args.backend == "tabular":
        result = _replay_front(args, space)
        return _write_front(args, result)
    surrogate = AccuracySurrogate(space)
    run_state = _run_state(
        args,
        "front",
        {"device": args.device, "layout": args.layout, "seed": args.seed},
        ("predictor", "front"),
    )

    # The predictor build and NSGA-II run are the shared serving-layer
    # recipe (repro.serve.pipeline): the daemon must stay bit-identical
    # to this offline path, so both call the same functions.
    predictor = _checkpointed_lut_predictor(
        run_state,
        space,
        lambda: build_front_predictor(
            space, args.device, args.seed,
            workers=args.workers, backend=args.backend,
        ),
    )
    cache = EvaluationCache()
    front_ckpt = None
    if run_state is not None:
        front_ckpt = PhaseCheckpoint(
            run_state,
            "front",
            extra_save=lambda: {
                "cache": cache.snapshot(lambda p: p.to_dict())
            },
            extra_restore=lambda state: cache.restore(
                state["cache"], BiObjective.from_dict
            ),
        )

    result = front_search(
        space,
        predictor,
        seed=args.seed,
        cache=cache,
        workers=args.workers,
        backend=args.backend,
        checkpoint=front_ckpt,
        surrogate=surrogate,
        cancel=_cancel_token(args),
    )
    return _write_front(args, result)


def _write_front(args: argparse.Namespace, result) -> int:
    """Print and persist a Pareto front (shared by live and replay)."""
    print(f"{len(result.front)} Pareto points "
          f"({result.num_evaluations} evaluations):")
    for p in result.front:
        print(f"  {p.latency_ms:7.2f} ms -> proxy acc {p.accuracy:.4f}")

    out = _ensure_out(args.out)
    csv = series_to_csv(
        {
            "latency_ms": [p.latency_ms for p in result.front],
            "proxy_accuracy": [p.accuracy for p in result.front],
        }
    )
    path = out / f"front_{args.device}_{args.layout}.csv"
    atomic_write_text(path, csv + "\n")
    print(f"front written to {path}")
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    from repro.hardware import EnergyModel, EnergyPredictor

    space = _space(args.layout)
    device = calibrated_devices()[args.device]
    model = EnergyModel(device)
    predictor = EnergyPredictor(space, model).build(seed=args.seed)
    bias = predictor.calibrate_bias(num_archs=30, seed=args.seed + 1)

    rng = np.random.default_rng(args.seed + 2)
    rows = []
    for _ in range(args.samples):
        arch = space.sample(rng)
        rows.append(
            (
                device.latency_ms(space, arch),
                model.arch_energy_mj(space, arch),
                predictor.predict(arch),
            )
        )
    print(f"energy predictor bias = {bias:+.2f} mJ")
    print(f"{'latency ms':>11s} {'energy mJ':>10s} {'predicted mJ':>13s}")
    for lat, mj, pred in rows[:10]:
        print(f"{lat:11.2f} {mj:10.1f} {pred:13.1f}")

    out = _ensure_out(args.out)
    csv = series_to_csv(
        {
            "latency_ms": [r[0] for r in rows],
            "energy_mj": [r[1] for r in rows],
            "predicted_mj": [r[2] for r in rows],
        }
    )
    path = out / f"energy_{args.device}_{args.layout}.csv"
    atomic_write_text(path, csv + "\n")
    print(f"samples written to {path}")
    return 0


def cmd_tabulate(args: argparse.Namespace) -> int:
    from repro.tabular import save_artifact, tabulate

    space = _space(args.layout)
    devices = tuple(args.device) if args.device else ("edge",)
    table = tabulate(
        space,
        devices,
        seed=args.seed,
        num_archs=args.num_archs or None,
        recipe=args.recipe,
        workers=args.workers,
        backend=args.backend,
    )
    out = _ensure_out(args.out)
    path = out / f"table_{args.layout}_{args.recipe}_seed{args.seed}"
    save_artifact(table, path, layout=args.layout)
    coverage = "exhaustive" if table.exhaustive else "sampled"
    print(
        f"tabulated {len(table)} architectures ({coverage}) for "
        f"{', '.join(table.devices)} "
        f"[recipe={args.recipe} seed={args.seed}]"
    )
    print(f"artifact written to {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.report.sweeps import render_sweep_summary
    from repro.tabular import load_artifact, run_sweep

    table = load_artifact(args.table)
    devices = tuple(args.device) if args.device else table.devices
    if args.target:
        targets = tuple(args.target)
    else:
        # No target given: sweep around the artifact's own latency
        # distribution (the median of the primary device's column).
        targets = (float(np.median(table.latency_column())),)
    report = run_sweep(
        table,
        targets=targets,
        seeds=tuple(range(args.seeds)),
        devices=devices,
        generations=args.generations,
        population_size=args.population,
        num_parents=args.parents,
    )
    print(
        f"{len(report.results)} scenarios "
        f"({len(devices)} devices x {len(targets)} targets x "
        f"{args.seeds} seeds):"
    )
    print(render_sweep_summary(report.summary_rows()))

    out = _ensure_out(args.out)
    path = out / "sweep.json"
    atomic_write_json(path, report.to_dict())
    for label, band in report.bands().items():
        csv = series_to_csv(
            {
                "generation": band["generation"],
                "mean": band["mean"],
                "std": band["std"],
                "min": band["min"],
                "max": band["max"],
            }
        )
        band_path = out / f"sweep_band_{label.replace('@', '_')}.csv"
        atomic_write_text(band_path, csv + "\n")
    print(f"sweep written to {path} (+ per-group band CSVs)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HSCoNAS reproduction command-line interface",
    )
    parser.add_argument("--out", default="results",
                        help="artifact output directory (default: results)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workers(
        p: argparse.ArgumentParser, tabular: bool = False
    ) -> None:
        p.add_argument(
            "--workers", type=int, default=0,
            help="evaluation worker processes; 0 = serial (the default), "
                 "results are identical for any value",
        )
        choices = ("auto", "serial", "multiprocess")
        if tabular:
            choices = choices + ("tabular",)
        p.add_argument(
            "--backend", choices=choices, default="auto",
            help="evaluation backend; auto picks multiprocess when "
                 "--workers >= 2, serial otherwise — results are "
                 "identical either way (see docs/performance.md)"
                 + (", and tabular replays a prebuilt artifact "
                    "(requires --table)" if tabular else ""),
        )
        if tabular:
            p.add_argument(
                "--table", default=None, metavar="DIR",
                help="tabular artifact directory for --backend tabular "
                     "(build one with `repro tabulate`)",
            )

    def add_deadline(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--deadline-ms", type=float, default=None, metavar="MS",
            help="cooperative wall-clock budget: a run that overruns it "
                 "stops within one generation and exits 3 with a "
                 "partial-progress line (see docs/robustness.md)",
        )

    def add_run_state(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--run-dir", default=None, metavar="DIR",
            help="start a new crash-safe checkpointed run in DIR "
                 "(refuses to clobber an existing run)",
        )
        p.add_argument(
            "--resume", default=None, metavar="DIR",
            help="resume a killed checkpointed run from DIR, bit-exact "
                 "(see docs/robustness.md)",
        )

    p = sub.add_parser("search", help="run one HSCoNAS pipeline")
    p.add_argument("--device", choices=("gpu", "cpu", "edge"), default="edge")
    p.add_argument("--layout", choices=LAYOUT_NAMES, default="a")
    p.add_argument("--target", type=float, default=34.0,
                   help="latency constraint T in ms")
    p.add_argument("--seed", type=int, default=0)
    add_workers(p, tabular=True)
    add_run_state(p)
    add_deadline(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("shrink",
                       help="progressive space shrinking trace (Sec. III-C)")
    p.add_argument("--device", choices=("gpu", "cpu", "edge"), default="edge")
    p.add_argument("--layout", choices=LAYOUT_NAMES, default="a")
    p.add_argument("--target", type=float, default=34.0,
                   help="latency constraint T in ms")
    p.add_argument("--quality-samples", type=int, default=100,
                   help="N in the Eq. 4 quality estimate")
    p.add_argument("--seed", type=int, default=0)
    add_workers(p)
    add_run_state(p)
    p.set_defaults(func=cmd_shrink)

    p = sub.add_parser("predict", help="build + evaluate the latency predictor")
    p.add_argument("--device", choices=("gpu", "cpu", "edge"), default="edge")
    p.add_argument("--layout", choices=LAYOUT_NAMES, default="a")
    p.add_argument("--seed", type=int, default=0)
    add_workers(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("table1", help="regenerate the Table-I comparison")
    p.add_argument("--baselines-only", action="store_true",
                   help="skip the HSCoNAS runs (baselines only, fast)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("front", help="NSGA-II accuracy/latency Pareto front")
    p.add_argument("--device", choices=("gpu", "cpu", "edge"), default="edge")
    p.add_argument("--layout", choices=LAYOUT_NAMES, default="a")
    p.add_argument("--seed", type=int, default=0)
    add_workers(p, tabular=True)
    add_run_state(p)
    add_deadline(p)
    p.set_defaults(func=cmd_front)

    p = sub.add_parser("energy",
                       help="energy model + predictor samples (future work)")
    p.add_argument("--device", choices=("gpu", "cpu", "edge"), default="edge")
    p.add_argument("--layout", choices=LAYOUT_NAMES, default="a")
    p.add_argument("--samples", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_energy)

    p = sub.add_parser(
        "tabulate",
        help="precompute a columnar tabular artifact for instant replay",
    )
    p.add_argument("--layout", choices=LAYOUT_NAMES, default="mini")
    p.add_argument(
        "--device", action="append", default=[],
        choices=("gpu", "cpu", "edge"), metavar="DEV",
        help="latency column(s) to tabulate (repeatable; default: edge)",
    )
    p.add_argument(
        "--num-archs", type=int, default=0, metavar="N",
        help="architectures to sample; 0 (default) = exhaustive "
             "(small layouts only — capped at 1e6)",
    )
    p.add_argument(
        "--recipe", choices=("front", "search"), default="front",
        help="which live pipeline's predictor/surrogate to tabulate: "
             "the serving-layer front recipe or the HSCoNAS search "
             "recipe (they score differently; replay must match)",
    )
    p.add_argument("--seed", type=int, default=0)
    add_workers(p)
    p.set_defaults(func=cmd_tabulate)

    p = sub.add_parser(
        "sweep",
        help="replay (device x target x seed) search scenarios "
             "against a tabular artifact; writes variance bands",
    )
    p.add_argument(
        "--table", required=True, metavar="DIR",
        help="tabular artifact directory (from `repro tabulate`)",
    )
    p.add_argument(
        "--device", action="append", default=[], metavar="DEV",
        help="device column(s) to sweep (repeatable; default: all "
             "columns in the artifact)",
    )
    p.add_argument(
        "--target", action="append", default=[], type=float, metavar="MS",
        help="latency target(s) in ms (repeatable; default: the median "
             "latency of the artifact's primary device column)",
    )
    p.add_argument(
        "--seeds", type=int, default=5, metavar="N",
        help="replay seeds 0..N-1 per (device, target) cell (default 5)",
    )
    p.add_argument("--generations", type=int, default=20)
    p.add_argument("--population", type=int, default=50)
    p.add_argument("--parents", type=int, default=20)
    p.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except RunStateError as exc:
        # Operator errors (bad --resume dir, corrupt checkpoint, config
        # mismatch) get one actionable line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Same contract for artifact problems (wrong space fingerprint,
        # corrupt columns, sampled table where replay needs exhaustive).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except DeadlineExceeded as exc:
        # --deadline-ms fired: one line of partial progress, exit 3
        # (distinct from operator errors so scripts can tell "ran out
        # of budget" from "misconfigured").
        progress = " ".join(
            f"{key}={value}"
            for key, value in sorted(exc.progress.items())
        )
        detail = f" ({progress})" if progress else ""
        print(f"deadline exceeded{detail}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
