"""AST-based code lint rules (stdlib ``ast``, no third-party deps).

Repo-specific rules distilled from bugs this codebase has actually had
or is structurally prone to:

* **RL101 global-rng** — calls into the legacy global RNG
  (``np.random.rand`` & friends, stdlib ``random``) make supernet
  training and EA runs non-reproducible; every draw must flow through an
  injected ``np.random.Generator`` seeded once per run.
* **RL102 float-key** — raw floats as dict/cache keys are the
  ``_cell_key`` bug class from PR 1: ``0.1 * 3 != 0.3`` silently misses
  LUT cells. Keys must be quantized (``round``/``_quantize_factor``).
* **RL103 workspace-mutation** — arrays handed out by cache/workspace
  accessors (``Im2colWorkspace.get``, ``LatencyLUT.as_table``,
  ``EvaluationCache.get_or_eval``, ``SharedWeightStore.shared_view``)
  are shared; mutating them in place corrupts every other alias (the
  im2col aliasing hazard — or, for shared-memory views, every worker
  process at once).
* **RL104 mutable-default** — mutable default arguments alias across
  calls.
* **RL105 bare-except** — a bare ``except:`` swallows
  ``KeyboardInterrupt``/``SystemExit`` and hides real failures.
* **RL106 raw-json-write** — JSON artifacts written via
  ``json.dump``/``handle.write(json.dumps(...))``/``Path.write_text``
  can be torn in half by a crash; every JSON artifact must go through
  :mod:`repro.runstate.atomic` (``atomic_write_json``/``_text``) so
  readers only ever see a complete old or complete new file.
* **RL107 direct-worker-pool** — constructing ``WorkerPool`` directly
  hard-wires the multiprocess dispatch path; call sites must go through
  ``repro.parallel.create_backend`` so ``--backend serial`` (and future
  tabular replay) keeps working everywhere. The backend layer itself
  (``repro/parallel/``) and its tests (``tests/parallel/``) are exempt.
* **RL108 direct-socket-server** — constructing sockets, HTTP servers,
  or HTTP connections outside :mod:`repro.serve` forks the serving
  surface: a second listener would dodge the daemon's coalescing,
  metrics, graceful drain, and byte-determinism contracts. All network
  I/O goes through ``repro.serve.server`` / ``repro.serve.client``; the
  serve layer itself (``repro/serve/``) and its tests (``tests/serve/``)
  are exempt.
* **RL109 unbounded-blocking-wait** — a ``.wait()`` / ``wait(...)`` /
  queue ``.get()`` with no timeout inside the threaded runtime layers
  (``repro/serve/``, ``repro/parallel/``, ``repro/resilience/``) blocks
  its thread forever when the wake-up never comes — the coalescing
  leader-death hang class: a follower waiting on a leader that died
  waits until the daemon is killed. Every blocking primitive there must
  take a timeout and re-check its condition in a loop, so a lost signal
  degrades to one poll interval of latency instead of a deadlock. Only
  those layers are in scope; ordinary code is untouched.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.lint.findings import Finding, Severity
from repro.lint.rules import CODE_RULES, Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.astcache import AstCache, SourceFile

RL101 = CODE_RULES.register(
    Rule(
        "RL101",
        "global-rng",
        Severity.ERROR,
        "global RNG call; thread an injected, seeded np.random.Generator "
        "instead so runs are bit-reproducible under a single seed",
    )
)
RL102 = CODE_RULES.register(
    Rule(
        "RL102",
        "float-key",
        Severity.ERROR,
        "raw float used as a dict/cache key; quantize first "
        "(round / _quantize_factor) so float drift cannot miss the cell",
    )
)
RL103 = CODE_RULES.register(
    Rule(
        "RL103",
        "workspace-mutation",
        Severity.ERROR,
        "in-place mutation of an array returned by a cache/workspace "
        "accessor; copy it (or write through the accessor's API) — the "
        "buffer is shared with other call sites",
    )
)
RL104 = CODE_RULES.register(
    Rule(
        "RL104",
        "mutable-default",
        Severity.ERROR,
        "mutable default argument; use None and construct inside the body",
    )
)
RL105 = CODE_RULES.register(
    Rule(
        "RL105",
        "bare-except",
        Severity.ERROR,
        "bare except swallows SystemExit/KeyboardInterrupt; "
        "catch a concrete exception type",
    )
)
RL106 = CODE_RULES.register(
    Rule(
        "RL106",
        "raw-json-write",
        Severity.WARNING,
        "JSON artifact written without the atomic helper; use "
        "atomic_write_json/atomic_write_text from repro.runstate.atomic "
        "so a crash cannot leave a torn half-file",
    )
)
RL107 = CODE_RULES.register(
    Rule(
        "RL107",
        "direct-worker-pool",
        Severity.ERROR,
        "direct WorkerPool construction bypasses the backend factory; "
        "use repro.parallel.create_backend so the serial/multiprocess/"
        "tabular choice stays a config knob",
    )
)

RL108 = CODE_RULES.register(
    Rule(
        "RL108",
        "direct-socket-server",
        Severity.ERROR,
        "direct socket/HTTP server or connection construction outside "
        "repro.serve; route network I/O through repro.serve.server / "
        "repro.serve.client so coalescing, metrics, and graceful drain "
        "apply everywhere",
    )
)

RL109 = CODE_RULES.register(
    Rule(
        "RL109",
        "unbounded-blocking-wait",
        Severity.ERROR,
        "blocking primitive with no timeout in a threaded runtime "
        "layer; pass timeout= and re-check the condition in a loop so "
        "a lost wake-up cannot deadlock the daemon",
    )
)

# Paths where constructing WorkerPool directly is the point: the backend
# layer that wraps it, and the tests that exercise the pool itself.
_RL107_EXEMPT_PATH_PARTS = ("repro/parallel/", "tests/parallel/")

# Paths where touching sockets directly is the point: the serving layer
# itself and the tests that exercise it.
_RL108_EXEMPT_PATH_PARTS = ("repro/serve/", "tests/serve/")

# RL109 applies ONLY here — the layers whose threads serve requests or
# supervise workers, where an unbounded block is a daemon-wide hang.
_RL109_SCOPE_PATH_PARTS = (
    "repro/serve/",
    "repro/parallel/",
    "repro/resilience/",
)

# Receiver names that mark a ``.get()`` as a blocking queue read (a
# dict-style ``.get(key)`` always has a positional key, so plain dict
# lookups never match the zero-arg form this rule flags).
_RL109_QUEUE_NAMES = ("queue", "inbox", "mailbox")

# Constructors that open a listening socket or client connection.
_SOCKET_CONSTRUCTORS = {
    "socket",
    "create_connection",
    "create_server",
    "HTTPServer",
    "ThreadingHTTPServer",
    "TCPServer",
    "ThreadingTCPServer",
    "UDPServer",
    "HTTPConnection",
    "HTTPSConnection",
}


def _path_exempt(path: str, parts: Sequence[str]) -> bool:
    normalized = path.replace("\\", "/")
    return any(part in normalized for part in parts)


def _rl107_exempt(path: str) -> bool:
    return _path_exempt(path, _RL107_EXEMPT_PATH_PARTS)

# np.random attributes that are part of the Generator-based API and
# therefore fine to touch from module scope.
_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

# stdlib ``random`` module functions that draw from the global state.
_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "uniform",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "triangular",
    "seed",
    "getrandbits",
    "randbytes",
}

# Accessor method names whose return value is a shared buffer (RL103).
# ``shared_view`` is the SharedWeightStore accessor: its arrays alias
# memory mapped into every worker process, so in-place mutation corrupts
# concurrent evaluations (not just other call sites).
_SHARED_ACCESSORS = {
    "as_table",
    "get_or_eval",
    "get_or_eval_many",
    "shared_view",
}
# ``.get(...)`` only counts when the receiver looks like a workspace or
# cache object — plain dict.get is not a shared-buffer accessor.
_SHARED_RECEIVER_HINTS = ("workspace", "cache")


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class _ModuleImports(ast.NodeVisitor):
    """Aliases under which numpy/numpy.random/random are visible."""

    def __init__(self) -> None:
        self.numpy_aliases: Set[str] = set()
        self.np_random_aliases: Set[str] = set()
        self.stdlib_random_aliases: Set[str] = set()
        self.json_aliases: Set[str] = set()
        # from numpy.random import rand  /  from random import shuffle
        self.direct_global_fns: Dict[str, str] = {}  # alias -> origin
        # from json import dump, dumps — alias -> original name
        self.direct_json_fns: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name
            if alias.name == "numpy":
                self.numpy_aliases.add(name)
            elif alias.name == "numpy.random":
                if alias.asname is None:
                    # visible as ``numpy.random.<fn>`` — the 3-part form
                    self.numpy_aliases.add("numpy")
                else:
                    self.np_random_aliases.add(alias.asname)
            elif alias.name == "random":
                self.stdlib_random_aliases.add(name)
            elif alias.name == "json":
                self.json_aliases.add(name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "json":
            for alias in node.names:
                if alias.name in ("dump", "dumps"):
                    self.direct_json_fns[alias.asname or alias.name] = (
                        alias.name
                    )
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_aliases.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED_NP_RANDOM:
                    self.direct_global_fns[alias.asname or alias.name] = (
                        f"numpy.random.{alias.name}"
                    )
        elif node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RANDOM_FNS:
                    self.direct_global_fns[alias.asname or alias.name] = (
                        f"random.{alias.name}"
                    )


class _Checker(ast.NodeVisitor):
    """Single-pass visitor emitting findings for all five rules."""

    def __init__(self, path: str, imports: _ModuleImports) -> None:
        self.path = path
        self.imports = imports
        self.findings: List[Finding] = []
        # Names bound (in any scope; conservatively flat) to shared
        # accessor results, for RL103.
        self._shared_names: Set[str] = set()

    # -- helpers ---------------------------------------------------------------

    def _emit(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule_id=rule.rule_id,
                severity=rule.severity,
                message=message,
                file=self.path,
                line=getattr(node, "lineno", None),
                column=getattr(node, "col_offset", None),
            )
        )

    # -- RL101: global RNG -----------------------------------------------------

    def _check_global_rng(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if (
            len(chain) >= 3
            and chain[0] in self.imports.numpy_aliases
            and chain[1] == "random"
            and chain[2] not in _ALLOWED_NP_RANDOM
        ):
            self._emit(
                RL101, node,
                f"call to global numpy RNG 'np.random.{chain[2]}'",
            )
            return
        # npr.<fn>(...) with `import numpy.random as npr` or
        # `from numpy import random as npr`
        if (
            len(chain) == 2
            and chain[0] in self.imports.np_random_aliases
            and chain[1] not in _ALLOWED_NP_RANDOM
        ):
            self._emit(
                RL101, node,
                f"call to global numpy RNG 'numpy.random.{chain[1]}'",
            )
            return
        # random.<fn>(...) from the stdlib module
        if (
            len(chain) == 2
            and chain[0] in self.imports.stdlib_random_aliases
            and chain[1] in _GLOBAL_RANDOM_FNS
        ):
            self._emit(
                RL101, node, f"call to global stdlib RNG 'random.{chain[1]}'"
            )
            return
        # directly imported global fn: shuffle(...) after
        # `from random import shuffle`
        if (
            len(chain) == 1
            and chain[0] in self.imports.direct_global_fns
        ):
            origin = self.imports.direct_global_fns[chain[0]]
            self._emit(RL101, node, f"call to global RNG '{origin}'")

    # -- RL102: raw float keys ---------------------------------------------------

    @staticmethod
    def _float_constants(node: ast.AST) -> List[ast.Constant]:
        """Float literals appearing directly in a key expression
        (the expression itself, or elements of a tuple key)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return [node]
        if isinstance(node, ast.Tuple):
            return [
                e
                for e in node.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, float)
            ]
        return []

    def _check_float_key_subscript(self, node: ast.Subscript) -> None:
        # Slices on ndarrays are integer/slice expressions; a float
        # literal in a subscript is a dict-style key either way and is
        # a bug on ndarrays too.
        target = node.slice
        for const in self._float_constants(target):
            self._emit(
                RL102, const,
                f"float literal {const.value!r} used as a subscript key",
            )

    def _check_float_key_dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is None:  # **spread
                continue
            for const in self._float_constants(key):
                self._emit(
                    RL102, const,
                    f"float literal {const.value!r} used as a dict key",
                )

    # -- RL103: shared-buffer mutation ------------------------------------------

    def _is_shared_accessor_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr in _SHARED_ACCESSORS:
            return True
        if func.attr == "get":
            chain = _attr_chain(func.value)
            if chain is None:
                return False
            receiver = chain[-1].lower()
            return any(h in receiver for h in _SHARED_RECEIVER_HINTS)
        return False

    def _track_shared_assign(self, node: ast.Assign) -> None:
        if self._is_shared_accessor_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._shared_names.add(target.id)
        else:
            # Rebinding a tracked name to something else clears it.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._shared_names.discard(target.id)

    def _root_shared_name(self, node: ast.AST) -> Optional[str]:
        """The tracked name at the root of a target like ``buf[i]`` or
        ``table.cells[i]``; None when the target is not tracked."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name) and node.id in self._shared_names:
            return node.id
        return None

    def _check_shared_mutation_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                name = self._root_shared_name(target)
                if name is not None:
                    self._emit(
                        RL103, node,
                        f"in-place store into '{name}', which aliases a "
                        "shared cache/workspace buffer",
                    )

    def _check_shared_mutation_augassign(self, node: ast.AugAssign) -> None:
        name = self._root_shared_name(node.target)
        if name is None and isinstance(node.target, ast.Name):
            if node.target.id in self._shared_names:
                name = node.target.id
        if name is not None:
            self._emit(
                RL103, node,
                f"augmented assignment mutates '{name}', which aliases a "
                "shared cache/workspace buffer",
            )

    def _check_shared_mutation_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in {"fill", "sort", "resize", "partition"}
            and isinstance(func.value, ast.Name)
            and func.value.id in self._shared_names
        ):
            self._emit(
                RL103, node,
                f"'{func.value.id}.{func.attr}()' mutates a shared "
                "cache/workspace buffer in place",
            )

    # -- RL107: direct WorkerPool construction ------------------------------------

    def _check_worker_pool(self, node: ast.Call) -> None:
        if _rl107_exempt(self.path):
            return
        chain = _attr_chain(node.func)
        if chain is not None and chain[-1] == "WorkerPool":
            self._emit(
                RL107, node,
                "direct 'WorkerPool(...)' construction; build the "
                "evaluator via repro.parallel.create_backend instead",
            )

    # -- RL108: direct socket/server construction ---------------------------------

    def _check_socket_server(self, node: ast.Call) -> None:
        if _path_exempt(self.path, _RL108_EXEMPT_PATH_PARTS):
            return
        chain = _attr_chain(node.func)
        if chain is not None and chain[-1] in _SOCKET_CONSTRUCTORS:
            self._emit(
                RL108, node,
                f"direct '{chain[-1]}(...)' construction outside "
                "repro.serve; use repro.serve.server (daemon) or "
                "repro.serve.client (requests) instead",
            )

    # -- RL109: unbounded blocking waits ------------------------------------------

    def _check_unbounded_wait(self, node: ast.Call) -> None:
        if not _path_exempt(self.path, _RL109_SCOPE_PATH_PARTS):
            return
        has_timeout_kw = any(
            kw.arg == "timeout" for kw in node.keywords
        )
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "wait":
            # Event/Condition/Process .wait([timeout]) — a positional
            # argument is the timeout.
            if not node.args and not has_timeout_kw:
                self._emit(
                    RL109, node,
                    "unbounded '.wait()' blocks its thread forever on a "
                    "missed wake-up; pass timeout= and re-check the "
                    "condition in a loop",
                )
            return
        if isinstance(func, ast.Name) and func.id == "wait":
            # concurrent.futures.wait(fs[, timeout]) — timeout is the
            # second positional.
            if len(node.args) < 2 and not has_timeout_kw:
                self._emit(
                    RL109, node,
                    "unbounded 'wait(...)' blocks forever on a hung "
                    "worker; pass timeout= and handle the empty-done "
                    "case",
                )
            return
        if isinstance(func, ast.Attribute) and func.attr == "get":
            receiver = func.value
            name: Optional[str] = None
            if isinstance(receiver, ast.Attribute):
                name = receiver.attr
            elif isinstance(receiver, ast.Name):
                name = receiver.id
            if name is None:
                return
            lowered = name.lower().lstrip("_")
            if not any(part in lowered for part in _RL109_QUEUE_NAMES):
                return
            if not node.args and not has_timeout_kw:
                self._emit(
                    RL109, node,
                    f"unbounded '.get()' on '{name}' blocks forever; "
                    "pass timeout= (or use get_nowait) and handle Empty",
                )

    # -- RL106: raw JSON artifact writes -----------------------------------------

    def _is_json_dumps_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = _attr_chain(node.func)
        if chain is None:
            return False
        if (
            len(chain) == 2
            and chain[0] in self.imports.json_aliases
            and chain[1] == "dumps"
        ):
            return True
        return (
            len(chain) == 1
            and self.imports.direct_json_fns.get(chain[0]) == "dumps"
        )

    def _contains_json_dumps(self, node: ast.AST) -> bool:
        return any(self._is_json_dumps_call(sub) for sub in ast.walk(node))

    def _check_raw_json_write(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        # json.dump(obj, handle): streams JSON straight into an open
        # handle — a crash mid-stream leaves a prefix on disk.
        if chain is not None and (
            (
                len(chain) == 2
                and chain[0] in self.imports.json_aliases
                and chain[1] == "dump"
            )
            or (
                len(chain) == 1
                and self.imports.direct_json_fns.get(chain[0]) == "dump"
            )
        ):
            self._emit(
                RL106, node,
                "json.dump streams JSON into an open handle; "
                "use atomic_write_json so a crash cannot tear the artifact",
            )
            return
        # path.write_text(json.dumps(...) [+ "\n"]) and
        # handle.write(json.dumps(...)): the serialized payload goes
        # straight to the destination path instead of through
        # write-then-rename.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("write_text", "write")
            and any(self._contains_json_dumps(arg) for arg in node.args)
        ):
            self._emit(
                RL106, node,
                f"'{func.attr}' of a json.dumps payload bypasses the "
                "atomic writer; use atomic_write_json/atomic_write_text "
                "from repro.runstate.atomic",
            )

    # -- RL104 / RL105 -----------------------------------------------------------

    def _check_mutable_default(self, node: ast.arguments) -> None:
        for default in list(node.defaults) + [
            d for d in node.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._emit(RL104, default, "mutable default argument")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            ):
                self._emit(
                    RL104, default,
                    f"mutable default argument ({default.func.id}())",
                )

    # -- visitor plumbing --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_global_rng(node)
        self._check_shared_mutation_call(node)
        self._check_raw_json_write(node)
        self._check_worker_pool(node)
        self._check_socket_server(node)
        self._check_unbounded_wait(node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._check_float_key_subscript(node)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._check_float_key_dict(node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_shared_assign(node)
        self._check_shared_mutation_assign(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shared_mutation_augassign(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_default(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_mutable_default(node.args)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(RL105, node, "bare 'except:' clause")
        self.generic_visit(node)


def _lint_file(
    entry: "SourceFile", active_rules: Optional[Set[str]] = None
) -> List[Finding]:
    """Run the RL rules over one already-parsed module."""
    from repro.lint.rules import filter_suppressed

    if entry.tree is None:
        exc = entry.syntax_error
        return [
            Finding(
                rule_id="RL100",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg if exc else 'unparseable'}",
                file=entry.path,
                line=exc.lineno if exc else None,
                column=exc.offset if exc else None,
            )
        ]
    imports = _ModuleImports()
    imports.visit(entry.tree)
    checker = _Checker(entry.path, imports)
    checker.visit(entry.tree)
    findings = checker.findings
    if active_rules is not None:
        findings = [f for f in findings if f.rule_id in active_rules]
    return filter_suppressed(findings, entry.lines)


def lint_source(
    source: str,
    path: str = "<string>",
    active_rules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    from repro.lint.astcache import AstCache

    return _lint_file(AstCache().load(path, source=source), active_rules)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    cache: Optional["AstCache"] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    ``cache`` shares parsed trees with other passes (the flow analyses
    reuse it), keeping the run at one parse per file.
    """
    from repro.lint.astcache import AstCache, collect_python_files

    if cache is None:
        cache = AstCache()
    active = CODE_RULES.resolve(select, ignore)
    findings: List[Finding] = []
    for file_path in collect_python_files(paths):
        findings.extend(_lint_file(cache.load(file_path), active))
    return findings
