"""Static consistency checking for the HSCoNAS search stack.

Two halves, one report format, one CLI (``python -m repro.lint``):

* an **AST code lint** (``repro.lint.ast_rules``, rules ``RL1xx``) with
  repo-specific rules — global-RNG usage, raw float cache keys, shared
  workspace/cache buffer mutation, mutable defaults, bare except;
* **domain checkers** (rules ``RD2xx``) that statically validate search
  artifacts: LUT coverage of a space's reachable cells
  (``lut_check``), space/encoding/shrink-plan consistency
  (``space_check``), objective/EA configuration sanity
  (``config_check``), and crash-safe run-directory integrity
  (``runstate_check``).

See ``docs/static_analysis.md`` for the full rule catalog and
suppression syntax.
"""

from repro.lint.findings import (
    Finding,
    Severity,
    exit_code,
    render_json,
    render_text,
    sort_findings,
)
from repro.lint.rules import CODE_RULES, DOMAIN_RULES, Rule

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "CODE_RULES",
    "DOMAIN_RULES",
    "sort_findings",
    "render_text",
    "render_json",
    "exit_code",
    "lint_source",
    "lint_paths",
    "check_lut_coverage",
    "check_encoding",
    "check_space",
    "check_shrink_plan",
    "check_objective_config",
    "check_evolution_config",
    "check_pipeline_config",
    "check_run_dir",
]


def __getattr__(name):
    # Lazy re-exports: the AST lint must import without numpy, and the
    # domain checkers pull in the full search stack only when used.
    if name in ("lint_source", "lint_paths"):
        from repro.lint import ast_rules

        return getattr(ast_rules, name)
    if name == "check_lut_coverage":
        from repro.lint.lut_check import check_lut_coverage

        return check_lut_coverage
    if name in ("check_encoding", "check_space", "check_shrink_plan"):
        from repro.lint import space_check

        return getattr(space_check, name)
    if name in (
        "check_objective_config",
        "check_evolution_config",
        "check_pipeline_config",
    ):
        from repro.lint import config_check

        return getattr(config_check, name)
    if name == "check_run_dir":
        from repro.lint.runstate_check import check_run_dir

        return check_run_dir
    raise AttributeError(f"module 'repro.lint' has no attribute {name!r}")
