"""LUT-coverage analysis (domain checker, rules RD201/RD202).

Proves — without executing a search — that every ``(layer, op, cin,
factor)`` cell a :class:`~repro.space.search_space.SearchSpace` (the
full space or a shrunk one) can reach exists in a
:class:`~repro.hardware.lut.LatencyLUT`, head cells included. Cell
identity reuses the LUT's own quantized ``_cell_key`` (the PR 1 fix), so
the checker and the runtime can never disagree about which cell an
architecture hits.

A missing cell is reported with its exact coordinates and the nearest
cell the LUT *does* contain — the same diagnostic a mid-search
``KeyError`` would have produced, surfaced at load time instead.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.hardware.lut import LatencyLUT, _cell_key, layer_cin_choices
from repro.lint.findings import Finding, Severity
from repro.lint.rules import DOMAIN_RULES, Rule
from repro.nn.layers.mask import channels_kept
from repro.space.search_space import SearchSpace

RD200 = DOMAIN_RULES.register(
    Rule(
        "RD200",
        "lut-device-mismatch",
        Severity.WARNING,
        "LUT was built for a different device than the one being checked",
    )
)
RD201 = DOMAIN_RULES.register(
    Rule(
        "RD201",
        "lut-missing-cell",
        Severity.ERROR,
        "a reachable (layer, op, cin, factor) cell is absent from the LUT",
    )
)
RD202 = DOMAIN_RULES.register(
    Rule(
        "RD202",
        "lut-missing-head",
        Severity.ERROR,
        "a reachable head input width has no head cell in the LUT",
    )
)


def reachable_cells(
    space: SearchSpace,
) -> Iterator[Tuple[int, int, int, float]]:
    """Every operator cell an architecture of ``space`` can occupy.

    Input-channel choices per layer come from the previous layer's
    factor set (``layer_cin_choices``), exactly as ``LatencyLUT.build``
    enumerates them.
    """
    for layer in range(space.num_layers):
        for cin in layer_cin_choices(space, layer):
            for op in space.candidate_ops[layer]:
                for factor in space.candidate_factors[layer]:
                    yield layer, op, cin, factor


def reachable_head_widths(space: SearchSpace) -> List[int]:
    """Every final active width the classifier head can see."""
    last_max = space.geometry[-1].max_out_channels
    return sorted(
        {channels_kept(last_max, f) for f in space.candidate_factors[-1]}
    )


def check_lut_coverage(
    space: SearchSpace,
    lut: LatencyLUT,
    expected_device: Optional[str] = None,
    max_reports: int = 50,
) -> List[Finding]:
    """All findings for ``lut`` against the reachable set of ``space``.

    At most ``max_reports`` missing cells are named individually; the
    remainder is summarized in one closing finding so a hollowed-out LUT
    does not produce tens of thousands of lines.
    """
    component = f"lut:{lut.device_key}/{space.config.name}"
    findings: List[Finding] = []
    if expected_device is not None and lut.device_key != expected_device:
        findings.append(
            Finding(
                rule_id=RD200.rule_id,
                severity=RD200.severity,
                message=(
                    f"LUT was built for device {lut.device_key!r} but is "
                    f"being checked against {expected_device!r}"
                ),
                component=component,
            )
        )

    missing = 0
    for layer, op, cin, factor in reachable_cells(space):
        if _cell_key(layer, op, cin, factor) in lut.entries:
            continue
        missing += 1
        if missing <= max_reports:
            findings.append(
                Finding(
                    rule_id=RD201.rule_id,
                    severity=RD201.severity,
                    message=lut._miss_message(layer, op, cin, factor),
                    component=component,
                )
            )
    if missing > max_reports:
        findings.append(
            Finding(
                rule_id=RD201.rule_id,
                severity=RD201.severity,
                message=(
                    f"... and {missing - max_reports} more missing cells "
                    f"({missing} total)"
                ),
                component=component,
            )
        )

    if lut.head_ms:
        for width in reachable_head_widths(space):
            if width not in lut.head_ms:
                present = sorted(lut.head_ms)
                nearest = min(present, key=lambda w: abs(w - width))
                findings.append(
                    Finding(
                        rule_id=RD202.rule_id,
                        severity=RD202.severity,
                        message=(
                            f"LUT has no head cell for cin={width}; "
                            f"nearest existing head cell is cin={nearest}"
                        ),
                        component=component,
                    )
                )
    return findings
