"""One parse per file per lint run, shared across every pass.

Before this module each checker that wanted a syntax tree parsed the
file itself, so a run combining the per-file AST rules (``RL1xx``) with
the whole-program flow analyses (``RF3xx``) paid for every module
twice. An :class:`AstCache` is created once per CLI invocation and
handed to both passes: the first ``load`` of a path reads and parses
it, every later ``load`` is a dictionary hit. The cache also counts its
work (`files`, `parses`, `hits`) so ``--stats`` can report it and a
test can assert the parse-once contract.

Files that fail to parse are cached too (as a :class:`SourceFile` with
``tree=None`` plus the :class:`SyntaxError`): a broken module costs one
parse attempt, not one per pass, and every pass sees the same error.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SourceFile:
    """One loaded module: path, raw text, split lines, parsed tree."""

    path: str
    source: str
    lines: List[str] = field(default_factory=list)
    tree: Optional[ast.Module] = None
    syntax_error: Optional[SyntaxError] = None

    @property
    def ok(self) -> bool:
        return self.tree is not None


class AstCache:
    """Path-keyed memo of parsed modules with work accounting."""

    def __init__(self) -> None:
        self._files: Dict[str, SourceFile] = {}
        self.parses = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._files)

    def load(self, path: str, source: Optional[str] = None) -> SourceFile:
        """The parsed module at ``path``; parses at most once.

        ``source`` lets callers lint in-memory text (tests, editors)
        under a synthetic path without touching the filesystem.
        """
        cached = self._files.get(path)
        if cached is not None:
            self.hits += 1
            return cached
        if source is None:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        entry = SourceFile(path=path, source=source, lines=source.splitlines())
        self.parses += 1
        try:
            entry.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            entry.syntax_error = exc
        self._files[path] = entry
        return entry

    def stats(self) -> dict:
        return {"files": len(self._files), "parses": self.parses, "hits": self.hits}


def collect_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    return sorted(set(files))


def module_name_for(path: str) -> Tuple[str, ...]:
    """Best-effort dotted module name for ``path``.

    Walks up while ``__init__.py`` siblings exist, so
    ``src/repro/serve/metrics.py`` maps to ``("repro", "serve",
    "metrics")`` regardless of the lint invocation's working directory.
    """
    path = os.path.abspath(path)
    parts: List[str] = []
    base = os.path.basename(path)
    if base != "__init__.py":
        parts.append(os.path.splitext(base)[0])
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    return tuple(reversed(parts))
