"""Space, encoding, and shrink-plan validity (rules RD203–RD205).

Static checks on the search-space artifacts the runtime otherwise trusts:

* **RD203 encoding-out-of-space** — an architecture encoding whose op or
  factor falls outside its (possibly shrunk) space's candidate sets.
* **RD204 stage-plan-inconsistent** — a space whose derived per-layer
  geometry contradicts its stage plan (stride-2 anywhere but a stage
  start, wrong layer count, factors off the config grid).
* **RD205 shrink-plan-invalid** — a progressive-shrinking schedule that
  is not monotone back-to-front (paper Fig. 5: stage 1 fixes the last
  layers, stage 2 the block before them), repeats a layer, or indexes
  out of range.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.rules import DOMAIN_RULES, Rule
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace

RD203 = DOMAIN_RULES.register(
    Rule(
        "RD203",
        "encoding-out-of-space",
        Severity.ERROR,
        "architecture encoding uses an op/factor outside the space's "
        "candidate sets",
    )
)
RD204 = DOMAIN_RULES.register(
    Rule(
        "RD204",
        "stage-plan-inconsistent",
        Severity.ERROR,
        "space geometry contradicts its stage plan",
    )
)
RD205 = DOMAIN_RULES.register(
    Rule(
        "RD205",
        "shrink-plan-invalid",
        Severity.ERROR,
        "progressive-shrinking schedule is not monotone back-to-front",
    )
)

_FACTOR_TOL = 1e-9


def check_encoding(space: SearchSpace, arch: Architecture) -> List[Finding]:
    """Findings for one architecture encoding against ``space``."""
    component = f"encoding:{space.config.name}"
    findings: List[Finding] = []
    if arch.num_layers != space.num_layers:
        findings.append(
            Finding(
                rule_id=RD203.rule_id,
                severity=RD203.severity,
                message=(
                    f"encoding has {arch.num_layers} layers; the space "
                    f"has {space.num_layers}"
                ),
                component=component,
            )
        )
        return findings
    for layer, (op, factor) in enumerate(zip(arch.ops, arch.factors)):
        if op not in space.candidate_ops[layer]:
            findings.append(
                Finding(
                    rule_id=RD203.rule_id,
                    severity=RD203.severity,
                    message=(
                        f"layer {layer}: op {op} is not a candidate "
                        f"(allowed: {list(space.candidate_ops[layer])})"
                    ),
                    component=component,
                )
            )
        if not any(
            abs(factor - f) < _FACTOR_TOL
            for f in space.candidate_factors[layer]
        ):
            findings.append(
                Finding(
                    rule_id=RD203.rule_id,
                    severity=RD203.severity,
                    message=(
                        f"layer {layer}: factor {factor} is not a candidate "
                        f"(allowed: {list(space.candidate_factors[layer])})"
                    ),
                    component=component,
                )
            )
    return findings


def check_space(space: SearchSpace) -> List[Finding]:
    """Internal-consistency findings for a space's derived geometry."""
    component = f"space:{space.config.name}"
    config = space.config
    findings: List[Finding] = []

    expected_layers = sum(s.num_blocks for s in config.stages)
    if len(space.geometry) != expected_layers:
        findings.append(
            Finding(
                rule_id=RD204.rule_id,
                severity=RD204.severity,
                message=(
                    f"geometry has {len(space.geometry)} layers but the "
                    f"stage plan sums to {expected_layers}"
                ),
                component=component,
            )
        )
        return findings

    stage_starts = []
    offset = 0
    for stage in config.stages:
        stage_starts.append(offset)
        offset += stage.num_blocks
    for geom in space.geometry:
        expected_stride = 2 if geom.layer in stage_starts else 1
        if geom.stride != expected_stride:
            findings.append(
                Finding(
                    rule_id=RD204.rule_id,
                    severity=RD204.severity,
                    message=(
                        f"layer {geom.layer}: stride {geom.stride} but the "
                        f"stage plan requires {expected_stride}"
                    ),
                    component=component,
                )
            )
        max_ch = config.layer_channels()[geom.layer]
        if geom.max_out_channels != max_ch:
            findings.append(
                Finding(
                    rule_id=RD204.rule_id,
                    severity=RD204.severity,
                    message=(
                        f"layer {geom.layer}: max_out_channels "
                        f"{geom.max_out_channels} contradicts the stage "
                        f"plan's {max_ch}"
                    ),
                    component=component,
                )
            )

    declared = tuple(float(f) for f in config.channel_factors)
    for layer, factors in enumerate(space.candidate_factors):
        off_grid = [
            f
            for f in factors
            if not any(abs(float(f) - d) < _FACTOR_TOL for d in declared)
        ]
        if off_grid:
            findings.append(
                Finding(
                    rule_id=RD204.rule_id,
                    severity=RD204.severity,
                    message=(
                        f"layer {layer}: candidate factors {off_grid} are "
                        "not on the config's factor grid"
                    ),
                    component=component,
                )
            )
    return findings


def check_shrink_plan(
    space: SearchSpace, stage_layers: Sequence[Sequence[int]]
) -> List[Finding]:
    """Findings for a progressive-shrinking schedule.

    The paper's procedure (Sec. III-C, Fig. 5) fixes layers strictly
    back-to-front: within a stage, layers descend; across stages, every
    layer of stage ``s+1`` precedes every layer already fixed in stage
    ``s``. A repeated layer would re-fix an already-pinned operator.
    """
    component = f"shrink-plan:{space.config.name}"
    num_layers = space.num_layers
    findings: List[Finding] = []

    seen = set()
    prev_min = num_layers  # layers of stage s+1 must all be < this
    for stage_idx, layers in enumerate(stage_layers):
        layers = list(layers)
        if not layers:
            findings.append(
                Finding(
                    rule_id=RD205.rule_id,
                    severity=RD205.severity,
                    message=f"stage {stage_idx} fixes no layers",
                    component=component,
                )
            )
            continue
        for layer in layers:
            if not 0 <= layer < num_layers:
                findings.append(
                    Finding(
                        rule_id=RD205.rule_id,
                        severity=RD205.severity,
                        message=(
                            f"stage {stage_idx}: layer {layer} outside "
                            f"[0, {num_layers})"
                        ),
                        component=component,
                    )
                )
            elif layer in seen:
                findings.append(
                    Finding(
                        rule_id=RD205.rule_id,
                        severity=RD205.severity,
                        message=(
                            f"stage {stage_idx}: layer {layer} is fixed "
                            "twice"
                        ),
                        component=component,
                    )
                )
            seen.add(layer)
        if any(b >= a for a, b in zip(layers, layers[1:])):
            findings.append(
                Finding(
                    rule_id=RD205.rule_id,
                    severity=RD205.severity,
                    message=(
                        f"stage {stage_idx}: layers {layers} are not "
                        "strictly descending (back-to-front)"
                    ),
                    component=component,
                )
            )
        in_range = [l for l in layers if 0 <= l < num_layers]
        if in_range and max(in_range) >= prev_min:
            findings.append(
                Finding(
                    rule_id=RD205.rule_id,
                    severity=RD205.severity,
                    message=(
                        f"stage {stage_idx} fixes layer {max(in_range)}, "
                        f"which does not precede the previous stage's "
                        f"earliest fixed layer {prev_min}"
                    ),
                    component=component,
                )
            )
        if in_range:
            prev_min = min(prev_min, min(in_range))
    return findings
