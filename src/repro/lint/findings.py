"""Findings: the common currency of every lint rule.

Both halves of ``repro.lint`` — the AST code lint and the domain
checkers — report :class:`Finding` objects. A finding carries a stable
rule id (``RL1xx`` for code rules, ``RD2xx`` for domain rules), a
severity, a human message, and a location: ``file:line:col`` for code
findings, a logical ``component`` (e.g. ``lut:edge/imagenet-a``) for
domain findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional


class Severity(Enum):
    """Finding severity; only errors fail a non-strict run."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Exactly one of (``file``, ``component``) is normally set: code
    findings point into a source file, domain findings at a logical
    artifact (a LUT, a space, a config).
    """

    rule_id: str
    severity: Severity
    message: str
    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    component: Optional[str] = None

    def location(self) -> str:
        if self.file is not None:
            line = self.line if self.line is not None else 0
            col = self.column if self.column is not None else 0
            return f"{self.file}:{line}:{col}"
        return self.component or "<global>"

    def format(self) -> str:
        return f"{self.location()}: {self.rule_id} {self.severity}: {self.message}"

    def to_dict(self) -> Dict:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "component": self.component,
        }


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable report order: file findings first (by path/line/col), then
    domain findings by component and rule id."""
    return sorted(
        findings,
        key=lambda f: (
            f.file is None,
            f.file or "",
            f.line or 0,
            f.column or 0,
            f.component or "",
            f.rule_id,
        ),
    )


def render_text(findings: Iterable[Finding]) -> str:
    ordered = sort_findings(findings)
    lines = [f.format() for f in ordered]
    errors = sum(1 for f in ordered if f.severity is Severity.ERROR)
    warnings = len(ordered) - errors
    lines.append(
        f"{len(ordered)} finding(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    return json.dumps(
        [f.to_dict() for f in sort_findings(findings)], indent=2
    )


def exit_code(findings: Iterable[Finding], strict: bool = False) -> int:
    """0 if the run passes, 1 otherwise.

    Errors always fail; with ``strict`` warnings fail too.
    """
    for f in findings:
        if f.severity is Severity.ERROR or strict:
            return 1
    return 0
