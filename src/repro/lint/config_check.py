"""Objective / EA / pipeline configuration validation (RD206–RD210).

These checkers accept plain mappings *or* the dataclass configs, so an
artifact (a JSON run config, a preset) can be validated before any
runtime object — which would raise mid-construction, one field at a
time — is built. Every problem in the artifact is reported at once.

Rules follow the paper: Eq. 5's trade-off only penalizes (rather than
rewards) constraint violations when ``beta < 0``; the latency target
``T`` must be positive for ``LAT/T`` to mean anything; the EA needs
``population >= parents`` and probabilities in ``[0, 1]``; and Eq. 4's
Monte-Carlo quality uses ``N = 100`` samples — far smaller budgets make
the subspace ranking noise-dominated.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Mapping, Optional, Union

from repro.lint.findings import Finding, Severity
from repro.lint.rules import DOMAIN_RULES, Rule

RD206 = DOMAIN_RULES.register(
    Rule(
        "RD206",
        "objective-beta",
        Severity.ERROR,
        "Eq. 5 trade-off coefficient beta must be negative",
    )
)
RD207 = DOMAIN_RULES.register(
    Rule(
        "RD207",
        "objective-target",
        Severity.ERROR,
        "latency target T must be positive",
    )
)
RD208 = DOMAIN_RULES.register(
    Rule(
        "RD208",
        "ea-population",
        Severity.ERROR,
        "EA population/parent/generation counts are inconsistent",
    )
)
RD209 = DOMAIN_RULES.register(
    Rule(
        "RD209",
        "ea-probability",
        Severity.ERROR,
        "EA crossover/mutation probabilities must lie in [0, 1]",
    )
)
RD210 = DOMAIN_RULES.register(
    Rule(
        "RD210",
        "quality-samples",
        Severity.WARNING,
        "Eq. 4 Monte-Carlo sampling budget is far below the paper's N=100",
    )
)

ConfigLike = Union[Mapping[str, Any], Any]

# Below this, the Eq. 4 subspace-quality estimate is too noisy to rank
# operators reliably (the paper justifies N=100 via Radosavovic et al.).
_QUALITY_SAMPLES_FLOOR = 25


def _as_mapping(config: ConfigLike) -> Mapping[str, Any]:
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, Mapping):
        return config
    raise TypeError(
        f"expected a mapping or dataclass config, got {type(config).__name__}"
    )


def _number(value: Any) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def check_objective_config(
    config: ConfigLike, component: str = "objective"
) -> List[Finding]:
    """Validate Eq. 5 parameters (``target_ms``, ``beta``) and the Eq. 4
    sampling budget (``quality_samples``/``num_samples``) if present."""
    cfg = _as_mapping(config)
    findings: List[Finding] = []

    if "beta" in cfg:
        beta = _number(cfg["beta"])
        if beta is None or beta >= 0:
            findings.append(
                Finding(
                    rule_id=RD206.rule_id,
                    severity=RD206.severity,
                    message=(
                        f"beta = {cfg['beta']!r}; Eq. 5 requires beta < 0 "
                        "(it is a penalty weight)"
                    ),
                    component=component,
                )
            )
    if "target_ms" in cfg:
        target = _number(cfg["target_ms"])
        if target is None or target <= 0:
            findings.append(
                Finding(
                    rule_id=RD207.rule_id,
                    severity=RD207.severity,
                    message=(
                        f"target_ms = {cfg['target_ms']!r}; the latency "
                        "constraint T must be positive"
                    ),
                    component=component,
                )
            )
    samples = cfg.get("quality_samples", cfg.get("num_samples"))
    if samples is not None:
        n = _number(samples)
        if n is None or n < 1 or int(n) != n:
            findings.append(
                Finding(
                    rule_id=RD210.rule_id,
                    severity=Severity.ERROR,
                    message=(
                        f"quality sampling budget N = {samples!r} is not a "
                        "positive integer"
                    ),
                    component=component,
                )
            )
        elif n < _QUALITY_SAMPLES_FLOOR:
            findings.append(
                Finding(
                    rule_id=RD210.rule_id,
                    severity=RD210.severity,
                    message=(
                        f"quality sampling budget N = {int(n)} is far below "
                        "the paper's N = 100; the Eq. 4 subspace ranking "
                        "will be noise-dominated"
                    ),
                    component=component,
                )
            )
    return findings


def check_evolution_config(
    config: ConfigLike, component: str = "evolution"
) -> List[Finding]:
    """Validate EA hyper-parameters (Sec. III-D)."""
    cfg = _as_mapping(config)
    findings: List[Finding] = []

    generations = _number(cfg.get("generations", 1))
    population = _number(cfg.get("population_size", 2))
    parents = _number(cfg.get("num_parents", 1))
    if generations is None or generations < 1:
        findings.append(
            Finding(
                rule_id=RD208.rule_id,
                severity=RD208.severity,
                message=f"generations = {cfg.get('generations')!r}; need >= 1",
                component=component,
            )
        )
    if population is None or population < 2:
        findings.append(
            Finding(
                rule_id=RD208.rule_id,
                severity=RD208.severity,
                message=(
                    f"population_size = {cfg.get('population_size')!r}; "
                    "need >= 2"
                ),
                component=component,
            )
        )
    if (
        parents is None
        or population is None
        or not 1 <= parents <= population
    ):
        findings.append(
            Finding(
                rule_id=RD208.rule_id,
                severity=RD208.severity,
                message=(
                    f"num_parents = {cfg.get('num_parents')!r} must lie in "
                    f"[1, population_size = {cfg.get('population_size')!r}]"
                ),
                component=component,
            )
        )
    for field in ("crossover_prob", "mutation_prob", "per_layer_mutation_prob"):
        if field not in cfg:
            continue
        p = _number(cfg[field])
        if p is None or not 0.0 <= p <= 1.0:
            findings.append(
                Finding(
                    rule_id=RD209.rule_id,
                    severity=RD209.severity,
                    message=f"{field} = {cfg[field]!r} outside [0, 1]",
                    component=component,
                )
            )
    return findings


def check_pipeline_config(
    config: ConfigLike, component: str = "pipeline"
) -> List[Finding]:
    """Validate a full HSCoNAS pipeline configuration artifact.

    Dispatches the objective and EA sub-configs to their checkers and
    validates the hardware-modeling sampling counts.
    """
    cfg = _as_mapping(config)
    findings = check_objective_config(cfg, component=component)
    evolution = cfg.get("evolution")
    if evolution is not None:
        findings.extend(
            check_evolution_config(evolution, component=f"{component}.evolution")
        )
    for field in ("lut_samples_per_cell", "bias_calibration_archs"):
        if field not in cfg:
            continue
        n = _number(cfg[field])
        if n is None or n < 1:
            findings.append(
                Finding(
                    rule_id=RD208.rule_id,
                    severity=RD208.severity,
                    message=f"{field} = {cfg[field]!r}; need >= 1",
                    component=component,
                )
            )
    return findings
