"""Run-directory validation (domain checker, rule RD211).

Proves — without resuming anything — that a crash-safe run directory
(:mod:`repro.runstate`) is internally consistent: the manifest parses
against the current schema version, phase progress is monotone along
``phase_order``, and every checkpoint file passes its embedded SHA-256
self-checksum. Validation reuses
:func:`repro.runstate.manifest.validate_manifest_dict` and
:meth:`repro.runstate.rundir.RunDir.load_checkpoint`, so the lint check
and ``--resume`` can never disagree about what a valid run directory is
— anything RD211 accepts, resume will read, and vice versa.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.lint.findings import Finding, Severity
from repro.lint.rules import DOMAIN_RULES, Rule
from repro.runstate.manifest import (
    MANIFEST_NAME,
    PHASE_COMPLETE,
    validate_manifest_dict,
)
from repro.runstate.rundir import CorruptCheckpointError, RunDir, RunStateError

RD211 = DOMAIN_RULES.register(
    Rule(
        "RD211",
        "run-dir-invalid",
        Severity.ERROR,
        "a run directory's manifest or checkpoints fail validation "
        "(schema version, checksum, phase ordering) — resuming it "
        "would fail or silently lose progress",
    )
)


def check_run_dir(path: Union[str, Path]) -> List[Finding]:
    """All RD211 findings for one run directory (empty = resumable)."""
    path = Path(path)
    component = f"run-dir:{path}"
    findings: List[Finding] = []

    def emit(message: str) -> None:
        findings.append(
            Finding(
                rule_id=RD211.rule_id,
                severity=RD211.severity,
                message=message,
                component=component,
            )
        )

    manifest_path = path / MANIFEST_NAME
    if not path.exists():
        emit("run directory does not exist")
        return findings
    if not manifest_path.exists():
        emit(f"no {MANIFEST_NAME} found — not a run directory")
        return findings
    try:
        payload = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        emit(f"manifest is unreadable: {exc}")
        return findings
    problems = validate_manifest_dict(payload)
    if problems:
        for problem in problems:
            emit(f"manifest: {problem}")
        return findings

    try:
        run = RunDir.open(path)
    except RunStateError as exc:  # pragma: no cover - validated above
        emit(str(exc))
        return findings
    for phase in run.manifest.phase_order:
        status = run.manifest.status(phase)
        try:
            record = run.load_checkpoint(phase)
        except CorruptCheckpointError as exc:
            emit(str(exc))
            continue
        if record is None:
            if status == PHASE_COMPLETE:
                emit(
                    f"phase {phase!r} is marked complete but its "
                    "checkpoint file is missing"
                )
            continue
        if record.get("phase") != phase:
            emit(
                f"checkpoint for phase {phase!r} claims to belong to "
                f"phase {record.get('phase')!r}"
            )
        if status == PHASE_COMPLETE and not record.get("complete", False):
            emit(
                f"phase {phase!r} is marked complete in the manifest but "
                "its checkpoint says the phase is still in progress"
            )
    return findings
