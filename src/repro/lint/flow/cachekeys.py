"""RF303 — cache-key soundness: floats reach keys only quantized.

RL102 catches float *literals* in key position; this analysis
generalizes it to dataflow. A float-valued expression — a ``float``
annotated parameter, a division result, a ``float(...)`` cast, or a
variable bound to one — that reaches a cache-key position without
passing through a quantizer is the ``_cell_key`` bug class one hop
removed: ``0.1 * 3 != 0.3`` means the key computed at insert time can
miss the key computed at lookup time.

Key positions:

* subscript keys of cache-shaped containers (name contains ``cache``,
  ``entries``, ``memo``, ``store``, ``lut``, ``table``) and tuple
  elements used in such keys;
* elements of tuples returned by ``key``/``*_key`` functions (the
  identity contract :class:`~repro.core.EvaluationCache` indexes by);
* arguments passed into a parameter some callee (transitively) places
  in a key position — the interprocedural hop.

Quantizers: ``round``, ``int``, ``math.floor``/``ceil``, ``//``, and
any function whose name contains ``quantize`` (``_quantize_factor``).
A value that went through one is clean. Values of *unknown* type are
never flagged — the analysis proves the positive bug class, it does
not demand annotations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph, _LocalTypes, resolve_call
from repro.lint.flow.project import FunctionInfo, Project, attr_chain
from repro.lint.rules import CODE_RULES, Rule

RF303 = CODE_RULES.register(
    Rule(
        "RF303",
        "unquantized-cache-key",
        Severity.ERROR,
        "float value flows into a cache-key position without passing "
        "through a quantizer (round/int/_quantize_factor); float drift "
        "silently misses cells",
    )
)

CACHE_NAME_HINTS = ("cache", "entries", "memo", "store", "lut", "table")
KEY_FUNCTION_NAMES = {"key", "cache_key"}
QUANTIZER_NAMES = {"round", "int", "floor", "ceil"}


def _is_key_function(name: str) -> bool:
    return name in KEY_FUNCTION_NAMES or name.endswith("_key")


def _is_cache_container(node: ast.AST) -> bool:
    chain = attr_chain(node)
    if chain is None:
        return False
    tail = chain[-1].lower()
    return any(hint in tail for hint in CACHE_NAME_HINTS)


@dataclass
class KeySummary:
    """Params that reach a key position unquantized in this function."""

    params_to_key: Set[int] = field(default_factory=set)

    def key(self) -> Tuple:
        return tuple(sorted(self.params_to_key))


# Float provenance values: a set of "reasons" — strings for concrete
# origins, ints for symbolic param pass-through.
_EMPTY: frozenset = frozenset()


class CacheKeyAnalysis:
    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.summaries: Dict[str, KeySummary] = {}
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        functions = list(self.project.functions.values())
        for _round in range(8):
            changed = False
            for fn in functions:
                summary = _KeyPass(self, fn, emit=False).compute()
                old = self.summaries.get(fn.qualname)
                if old is None or old.key() != summary.key():
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        for fn in functions:
            _KeyPass(self, fn, emit=True).compute()
        return self.findings


class _KeyPass:
    def __init__(
        self, analysis: CacheKeyAnalysis, fn: FunctionInfo, emit: bool
    ) -> None:
        self.analysis = analysis
        self.project = analysis.project
        self.fn = fn
        self.emit = emit
        self.summary = KeySummary()
        self.local_types = _LocalTypes(self.project, fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                self.local_types.note_assign(node)
        self.arg_names = fn.arg_names()
        # var -> float provenance (reason strings / param indices)
        self.env: Dict[str, frozenset] = {}
        args = fn.node.args
        all_args = args.posonlyargs + args.args + args.kwonlyargs
        for index, arg in enumerate(all_args):
            if arg.annotation is not None and _annotation_is_float(
                arg.annotation
            ):
                self.env[arg.arg] = frozenset({index})

    # -- driver ------------------------------------------------------------------

    def compute(self) -> KeySummary:
        in_key_fn = _is_key_function(self.fn.name)
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                value = self._float_prov(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if value:
                            self.env[target.id] = value
                        else:
                            self.env.pop(target.id, None)
                # Subscript store into a cache container: the key slice
                # is a key position.
                for target in node.targets:
                    if isinstance(
                        target, ast.Subscript
                    ) and _is_cache_container(target.value):
                        self._check_key_expr(target.slice, "subscript key")
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                if _is_cache_container(node.value):
                    self._check_key_expr(node.slice, "subscript key")
            elif isinstance(node, ast.Return) and in_key_fn:
                if node.value is not None:
                    self._check_key_expr(
                        node.value, f"return of key function "
                        f"'{self.fn.name}'"
                    )
            elif isinstance(node, ast.Call):
                self._check_call(node)
        return self.summary

    # -- float provenance ----------------------------------------------------------

    def _float_prov(self, node: ast.AST) -> frozenset:
        """Why ``node`` is float-valued; empty set = unknown/clean."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                return frozenset({f"float literal {node.value!r}"})
            return _EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return frozenset({"division result"})
            if isinstance(node.op, ast.FloorDiv):
                return _EMPTY  # floor-divide quantizes
            return self._float_prov(node.left) | self._float_prov(
                node.right
            )
        if isinstance(node, ast.UnaryOp):
            return self._float_prov(node.operand)
        if isinstance(node, ast.IfExp):
            return self._float_prov(node.body) | self._float_prov(
                node.orelse
            )
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is not None:
                tail = chain[-1]
                if tail in QUANTIZER_NAMES or "quantize" in tail.lower():
                    return _EMPTY  # quantizer output is clean
                if tail == "float":
                    return frozenset({"float() cast"})
            callee, is_method = resolve_call(
                self.project, node, self.fn, self.local_types
            )
            if callee is not None and "quantize" in callee.name.lower():
                return _EMPTY
            return _EMPTY
        return _EMPTY

    # -- key positions -------------------------------------------------------------

    def _check_key_expr(self, node: ast.AST, where: str) -> None:
        elements = (
            list(node.elts) if isinstance(node, ast.Tuple) else [node]
        )
        for element in elements:
            prov = self._float_prov(element)
            for reason in prov:
                if isinstance(reason, int):
                    # One of our params reaches a key position raw.
                    self.summary.params_to_key.add(reason)
                elif self.emit:
                    self.analysis.findings.append(
                        Finding(
                            rule_id="RF303",
                            severity=Severity.ERROR,
                            message=(
                                f"{reason} used in {where} without "
                                "quantization; round/int/"
                                "_quantize_factor it first"
                            ),
                            file=self.fn.module.path,
                            line=getattr(element, "lineno", None),
                            column=getattr(element, "col_offset", None),
                        )
                    )
        # Params reaching a key position also need reporting at call
        # sites; handled via summaries in _check_call.

    def _check_call(self, node: ast.Call) -> None:
        callee, is_method = resolve_call(
            self.project, node, self.fn, self.local_types
        )
        if callee is None:
            return
        summary = self.analysis.summaries.get(callee.qualname)
        if summary is None or not summary.params_to_key:
            return
        callee_args = callee.arg_names()
        offset = 1 if (is_method and callee_args[:1] == ["self"]) else 0
        kw_map = {
            kw.arg: kw.value for kw in node.keywords if kw.arg is not None
        }
        for param_index in sorted(summary.params_to_key):
            arg_node: Optional[ast.AST] = None
            position = param_index - offset
            if 0 <= position < len(node.args):
                arg_node = node.args[position]
            elif param_index < len(callee_args):
                arg_node = kw_map.get(callee_args[param_index])
            if arg_node is None:
                continue
            prov = self._float_prov(arg_node)
            param = (
                callee_args[param_index]
                if param_index < len(callee_args)
                else f"#{param_index}"
            )
            for reason in prov:
                if isinstance(reason, int):
                    # Our own param flows, through this call, into a
                    # key position — propagate to our summary.
                    self.summary.params_to_key.add(reason)
                elif self.emit:
                    self.analysis.findings.append(
                        Finding(
                            rule_id="RF303",
                            severity=Severity.ERROR,
                            message=(
                                f"{reason} flows into parameter "
                                f"'{param}' of {callee.qualname}, which "
                                "places it in a cache key without "
                                "quantization"
                            ),
                            file=self.fn.module.path,
                            line=node.lineno,
                            column=node.col_offset,
                        )
                    )


def _annotation_is_float(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "float"
    if isinstance(annotation, ast.Subscript):
        # Optional[float] / Union[float, ...]
        return any(
            _annotation_is_float(sub)
            for sub in ast.walk(annotation.slice)
            if isinstance(sub, (ast.Name, ast.Constant))
        )
    return False


def analyze_cache_keys(
    project: Project, graph: CallGraph
) -> List[Finding]:
    return CacheKeyAnalysis(project, graph).run()
