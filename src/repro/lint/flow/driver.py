"""Fixpoint driver: build the project once, run every RF analysis.

The driver owns the expensive shared artifacts — the
:class:`~repro.lint.flow.project.Project` index and the call graph —
and hands them to the three analyses. It also applies the same inline
``# repro-lint: disable=...`` suppression contract as the per-file
rules, and reports run statistics for ``--stats``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.lint.astcache import AstCache
from repro.lint.findings import Finding, sort_findings
from repro.lint.flow.cachekeys import analyze_cache_keys
from repro.lint.flow.callgraph import build_call_graph
from repro.lint.flow.locks import analyze_locks
from repro.lint.flow.project import Project
from repro.lint.flow.rng import analyze_rng
from repro.lint.rules import filter_suppressed

FLOW_RULES = ("RF300", "RF301", "RF302", "RF303")


@dataclass
class FlowStats:
    """What one flow run analyzed, for ``--stats`` and tests."""

    files: int = 0
    functions: int = 0
    classes: int = 0
    calls_resolved: int = 0
    calls_unresolved: int = 0
    wall_ms: float = 0.0

    def format(self) -> str:
        return (
            f"flow: {self.files} files, {self.functions} functions, "
            f"{self.classes} classes, {self.calls_resolved} calls "
            f"resolved ({self.calls_unresolved} opaque), "
            f"{self.wall_ms:.1f} ms"
        )


def analyze_flow(
    paths: Sequence[str],
    cache: Optional[AstCache] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], FlowStats]:
    """Run the whole-program analyses over ``paths``.

    ``cache`` shares parsed trees with the per-file pass; ``select`` /
    ``ignore`` filter by rule id with the same semantics as the CLI.
    """
    start = time.perf_counter()
    if cache is None:
        cache = AstCache()
    project = Project.from_paths(paths, cache)
    graph = build_call_graph(project)

    findings: List[Finding] = []
    findings.extend(analyze_rng(project, graph))
    findings.extend(analyze_locks(project, graph))
    findings.extend(analyze_cache_keys(project, graph))

    active = set(FLOW_RULES)
    if select:
        requested = set(select) & active
        if requested:
            active = requested
    if ignore:
        active -= set(ignore)
    findings = [f for f in findings if f.rule_id in active]

    # Inline suppression, same contract as the RL rules.
    kept: List[Finding] = []
    for finding in findings:
        module = (
            project.modules_by_path.get(finding.file)
            if finding.file
            else None
        )
        lines = module.lines if module is not None else []
        kept.extend(filter_suppressed([finding], lines))

    stats = FlowStats(
        files=len(project.modules),
        functions=len(project.functions),
        classes=len(project.classes),
        calls_resolved=graph.resolved,
        calls_unresolved=graph.unresolved,
        wall_ms=(time.perf_counter() - start) * 1e3,
    )
    return sort_findings(kept), stats
