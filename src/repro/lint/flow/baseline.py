"""Baseline files: accepted findings, checked in and documented.

A whole-program analysis without escape hatches either rots (findings
pile up, the signal drowns) or gets gutted (rules silenced globally).
The baseline is the third way: a checked-in JSON file listing each
accepted finding with a *reason*, reviewed like code. The strict CI
run passes exactly when every live finding is in the baseline, and
the baseline only ever shrinks — a stale entry (its finding no longer
fires) is reported so it gets deleted, keeping the file honest.

Matching is content-based — ``(rule, file, message)`` — deliberately
excluding line numbers so unrelated edits above a finding do not
invalidate the baseline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.lint.findings import Finding, Severity

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    file: str
    message: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        if finding.rule_id != self.rule:
            return False
        if finding.message != self.message:
            return False
        path = (finding.file or "").replace(os.sep, "/")
        return path.endswith(self.file)


def load_baseline(path: str) -> List[BaselineEntry]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "suppressions" not in payload:
        raise ValueError(
            f"baseline {path}: expected an object with 'suppressions'"
        )
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: unsupported version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = []
    for raw in payload["suppressions"]:
        missing = {"rule", "file", "message", "reason"} - set(raw)
        if missing:
            raise ValueError(
                f"baseline {path}: entry missing {sorted(missing)}"
            )
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                file=raw["file"],
                message=raw["message"],
                reason=raw["reason"],
            )
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], int, List[BaselineEntry]]:
    """(kept findings, suppressed count, stale entries).

    Stale entries — baseline lines whose finding no longer fires —
    are surfaced as warnings by the CLI so the baseline shrinks over
    time instead of accumulating dead weight.
    """
    kept: List[Finding] = []
    used = [False] * len(entries)
    suppressed = 0
    for finding in findings:
        matched = False
        for index, entry in enumerate(entries):
            if entry.matches(finding):
                used[index] = True
                matched = True
                break
        if matched:
            suppressed += 1
        else:
            kept.append(finding)
    stale = [e for e, u in zip(entries, used) if not u]
    return kept, suppressed, stale


def stale_entry_findings(
    stale: Sequence[BaselineEntry], baseline_path: str
) -> List[Finding]:
    return [
        Finding(
            rule_id="RF399",
            severity=Severity.WARNING,
            message=(
                f"stale baseline entry ({entry.rule} in {entry.file}): "
                "the finding no longer fires — delete the entry from "
                f"{baseline_path}"
            ),
            component=f"baseline:{baseline_path}",
        )
        for entry in stale
    ]
