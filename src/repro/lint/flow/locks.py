"""RF301/RF302 — lock discipline for the threaded modules.

The serve daemon answers every connection on its own thread, so any
mutable state it touches is shared state. The contract this analysis
enforces is the classic monitor pattern the code already follows:

* **RF301 guarded-field discipline.** For every class in a threaded
  module, the *guarded set* is inferred: fields written at least once
  inside ``with self._lock`` (outside ``__init__``). Any other read or
  write of a guarded field without the lock held — in the class's own
  methods *or* through an attribute chain from another module whose
  receiver type is statically known — is a race: a torn read at best,
  lost updates at worst.
* **RF302 lock-order inversion.** Acquiring lock B while holding lock
  A creates the order A→B; if any other code path creates B→A, two
  threads can deadlock. Acquisition order is collected per function,
  extended through the call graph (a call made while holding A inherits
  every lock the callee may acquire), and cycles in the resulting
  order graph are reported at the acquisition sites. Re-acquiring a
  plain (non-reentrant) ``Lock`` you already hold is self-deadlock and
  reported on the same rule.

Scope: modules under ``repro/serve/`` and ``repro/parallel/``, any
module that imports ``threading``, and every function the call graph
shows reachable from a thread entry point (``threading.Thread``
targets and ``do_GET``-style handler methods).

``__init__`` (and anything it calls before the object escapes) runs
before the object is shared, so bare writes there are construction,
not races.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph, _LocalTypes
from repro.lint.flow.project import (
    ClassInfo,
    FunctionInfo,
    Project,
    attr_chain,
)
from repro.lint.rules import CODE_RULES, Rule

RF301 = CODE_RULES.register(
    Rule(
        "RF301",
        "unlocked-guarded-field",
        Severity.ERROR,
        "field guarded by a lock elsewhere is accessed without holding "
        "it; take the lock (or expose a locked accessor) so concurrent "
        "threads cannot race the access",
    )
)
RF302 = CODE_RULES.register(
    Rule(
        "RF302",
        "lock-order-inversion",
        Severity.ERROR,
        "two locks are acquired in opposite orders on different code "
        "paths (or a non-reentrant lock is re-acquired); pick one "
        "global order to make deadlock impossible",
    )
)

# Methods that mutate their receiver in place — a call through a
# guarded field counts as a write to it.
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
    "move_to_end",
    "get_or_eval",
    "get_or_eval_many",
    "restore",
}

LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition", "Semaphore"}
REENTRANT = {"RLock"}

# Thread entry points by method name (stdlib server callbacks).
HANDLER_METHODS = {"do_GET", "do_POST", "do_PUT", "do_DELETE", "handle"}

# Methods whose bodies run before the object is shared with any other
# thread: construction, not concurrency.
CONSTRUCTION_METHODS = {"__init__", "__new__", "__post_init__"}


@dataclass(frozen=True)
class LockId:
    """One lock, identified by owning class and attribute name."""

    owner: str  # class qualname (or module path for module-level)
    attr: str
    reentrant: bool = False

    def label(self) -> str:
        return f"{self.owner.rsplit('.', 1)[-1]}.{self.attr}"


@dataclass
class ClassLockInfo:
    cls: ClassInfo
    locks: Dict[str, LockId] = field(default_factory=dict)  # attr -> id
    guarded: Set[str] = field(default_factory=set)
    # field -> one "file:line" witness of a guarded write, for messages
    guard_witness: Dict[str, str] = field(default_factory=dict)


class LockAnalysis:
    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.findings: List[Finding] = []
        self.class_info: Dict[str, ClassLockInfo] = {}
        # fn qualname -> locks it may acquire (transitively)
        self.may_acquire: Dict[str, Set[LockId]] = {}
        # order edges: (A, B) -> witness "file:line"
        self.order_edges: Dict[Tuple[LockId, LockId], str] = {}
        self.scope: Set[str] = set()  # fn qualnames in threaded scope

    # -- driver ------------------------------------------------------------------

    def run(self) -> List[Finding]:
        self._compute_scope()
        self._find_locks()
        self._infer_guarded_fields()
        self._check_accesses()
        self._check_lock_order()
        return self.findings

    # -- scope -------------------------------------------------------------------

    def _module_threaded(self, module) -> bool:
        dotted = module.dotted
        if ".serve" in dotted or ".parallel" in dotted:
            return True
        return any(
            target == "threading" or target.startswith("threading.")
            for target in module.imports.values()
        )

    def _compute_scope(self) -> None:
        roots: List[FunctionInfo] = []
        for fn in self.project.functions.values():
            if self._module_threaded(fn.module):
                self.scope.add(fn.qualname)
            if fn.name in HANDLER_METHODS:
                roots.append(fn)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    chain = attr_chain(node.func)
                    if chain is not None and chain[-1] == "Thread":
                        for kw in node.keywords:
                            if kw.arg == "target":
                                target = self.project.resolve_name(
                                    kw.value, fn.module
                                )
                                if isinstance(target, FunctionInfo):
                                    roots.append(target)
        self.scope |= self.graph.reachable_from(roots)

    # -- lock discovery ----------------------------------------------------------

    def _find_locks(self) -> None:
        for cls in self.project.classes.values():
            if cls.qualname.split(".")[0:1] and not self._module_threaded(
                cls.module
            ):
                continue
            info = ClassLockInfo(cls)
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    chain = attr_chain(node.value.func)
                    if chain is None or chain[-1] not in LOCK_CONSTRUCTORS:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.locks[target.attr] = LockId(
                                owner=cls.qualname,
                                attr=target.attr,
                                reentrant=chain[-1] in REENTRANT,
                            )
            if info.locks:
                self.class_info[cls.qualname] = info

    # -- guarded-field inference ---------------------------------------------------

    def _walk_method(
        self,
        info: ClassLockInfo,
        method: FunctionInfo,
        on_access,
    ) -> None:
        """Visit a method body tracking which of the class's own locks
        are held; call ``on_access(node, kind, field, held)`` for every
        ``self.<field>`` access (kind in {"read", "write"})."""

        def locks_in_with(stmt) -> Set[str]:
            held: Set[str] = set()
            for item in stmt.items:
                expr = item.context_expr
                # ``with self._lock:`` — possibly via Call (Condition)
                if isinstance(expr, ast.Call):
                    expr = expr.func
                chain = attr_chain(expr)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] == "self"
                    and chain[1] in info.locks
                ):
                    held.add(chain[1])
            return held

        def visit(node: ast.AST, held: Set[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                newly = locks_in_with(node)
                for item in node.items:
                    visit(item.context_expr, held)
                for sub in node.body:
                    visit(sub, held | newly)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not method.node:
                    return  # nested defs: separate execution context
                for sub in ast.iter_child_nodes(node):
                    visit(sub, held)
                return
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._classify_target(target, held, on_access)
                visit(node.value, held)
                return
            if isinstance(node, ast.AugAssign):
                self._classify_target(
                    node.target, held, on_access, augmented=True
                )
                visit(node.value, held)
                return
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    self._classify_target(target, held, on_access)
                return
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    root = self._self_field_of(func.value)
                    if root is not None:
                        on_access(node, "write", root, held)
                        for arg in node.args:
                            visit(arg, held)
                        for kw in node.keywords:
                            visit(kw.value, held)
                        return
                for sub in ast.iter_child_nodes(node):
                    visit(sub, held)
                return
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                root = self._self_field_of(node)
                if root is not None and root not in info.locks:
                    on_access(node, "read", root, held)
                visit(node.value, held)
                return
            for sub in ast.iter_child_nodes(node):
                visit(sub, held)

        visit(method.node, set())

    def _self_field_of(self, node: ast.AST) -> Optional[str]:
        """``self.f`` / ``self.f[i]`` / ``self.f.x`` -> ``f``."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _classify_target(
        self, target: ast.AST, held: Set[str], on_access, augmented=False
    ) -> None:
        # self.f = v / self.f[i] = v / self.f += v are writes to f.
        root_node = target
        while isinstance(root_node, ast.Subscript):
            root_node = root_node.value
        if (
            isinstance(root_node, ast.Attribute)
            and isinstance(root_node.value, ast.Name)
            and root_node.value.id == "self"
        ):
            on_access(target, "write", root_node.attr, held)

    def _infer_guarded_fields(self) -> None:
        for info in self.class_info.values():
            for name, method in info.cls.methods.items():
                if name in CONSTRUCTION_METHODS:
                    continue

                def note(node, kind, fld, held, _info=info, _m=method):
                    if kind == "write" and held and fld not in _info.locks:
                        _info.guarded.add(fld)
                        _info.guard_witness.setdefault(
                            fld,
                            f"{_m.module.path}:"
                            f"{getattr(node, 'lineno', 0)}",
                        )

                self._walk_method(info, method, note)

    # -- RF301 -------------------------------------------------------------------

    def _check_accesses(self) -> None:
        # Own-method accesses.
        for info in self.class_info.values():
            for name, method in info.cls.methods.items():
                if name in CONSTRUCTION_METHODS:
                    continue
                if self._only_called_from_init(info, method):
                    continue

                def note(node, kind, fld, held, _info=info, _m=method):
                    if fld not in _info.guarded or held:
                        return
                    witness = _info.guard_witness.get(fld, "?")
                    lock = next(iter(_info.locks.values())).label()
                    self.findings.append(
                        Finding(
                            rule_id="RF301",
                            severity=Severity.ERROR,
                            message=(
                                f"{kind} of '{_info.cls.name}.{fld}' "
                                f"without holding '{lock}' (field is "
                                f"written under the lock at {witness})"
                            ),
                            file=_m.module.path,
                            line=getattr(node, "lineno", None),
                            column=getattr(node, "col_offset", None),
                        )
                    )

                self._walk_method(info, method, note)
        # Cross-object accesses: <expr>.field where the receiver's
        # class is statically known and field is guarded there.
        for fn in self.project.functions.values():
            if fn.qualname not in self.scope:
                continue
            self._check_cross_object(fn)

    def _only_called_from_init(
        self, info: ClassLockInfo, method: FunctionInfo
    ) -> bool:
        """Private helpers invoked only by ``__init__`` run before the
        object escapes to other threads — construction, not racing."""
        if not method.name.startswith("_") or method.name.startswith("__"):
            return False
        callers = self.graph.callers_of(method)
        if not callers:
            return False
        return all(
            site.caller.class_name == info.cls.name
            and site.caller.name in CONSTRUCTION_METHODS
            for site in callers
        )

    def _check_cross_object(self, fn: FunctionInfo) -> None:
        local_types = _LocalTypes(self.project, fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                local_types.note_assign(node)
        own_class = fn.module.classes.get(fn.class_name or "")
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            receiver = local_types.type_of(node.value)
            if receiver is None or receiver is own_class:
                continue  # own-class accesses handled with lock context
            info = self.class_info.get(receiver.qualname)
            if info is None or node.attr not in info.guarded:
                continue
            # A method *call* on the object is fine — the method takes
            # its own lock; only bare field access races.
            if self._is_method_call_receiver(fn, node):
                continue
            witness = info.guard_witness.get(node.attr, "?")
            lock = next(iter(info.locks.values())).label()
            self.findings.append(
                Finding(
                    rule_id="RF301",
                    severity=Severity.ERROR,
                    message=(
                        f"read of '{receiver.name}.{node.attr}' from "
                        f"outside the class without holding '{lock}' "
                        f"(field is written under the lock at {witness});"
                        " use a locked accessor method"
                    ),
                    file=fn.module.path,
                    line=node.lineno,
                    column=node.col_offset,
                )
            )

    def _is_method_call_receiver(
        self, fn: FunctionInfo, attr: ast.Attribute
    ) -> bool:
        """True when ``attr`` is the ``obj.method`` of a call node."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and node.func is attr:
                return True
        return False

    # -- RF302 -------------------------------------------------------------------

    def _function_lock_context(self, fn: FunctionInfo):
        """Yield (lock, node, inner_locks, calls) acquisition facts."""
        acquired: List[Tuple[LockId, ast.AST, Set[LockId], List]] = []
        own_info: Optional[ClassLockInfo] = None
        if fn.class_name is not None:
            cls = fn.module.classes.get(fn.class_name)
            if cls is not None:
                own_info = self.class_info.get(cls.qualname)
        local_types = _LocalTypes(self.project, fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                local_types.note_assign(node)

        def lock_of(expr: ast.AST) -> Optional[LockId]:
            if isinstance(expr, ast.Call):
                expr = expr.func
            if not isinstance(expr, ast.Attribute):
                return None
            receiver = local_types.type_of(expr.value)
            if receiver is not None:
                info = self.class_info.get(receiver.qualname)
                if info is not None and expr.attr in info.locks:
                    return info.locks[expr.attr]
            if (
                own_info is not None
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in own_info.locks
            ):
                return own_info.locks[expr.attr]
            return None

        def visit(node: ast.AST, held: List[LockId]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                newly: List[LockId] = []
                for item in node.items:
                    lock = lock_of(item.context_expr)
                    if lock is not None:
                        site = (
                            f"{fn.module.path}:"
                            f"{item.context_expr.lineno}"
                        )
                        for outer in held:
                            self._note_order(
                                outer, lock, site, item.context_expr, fn
                            )
                        newly.append(lock)
                for sub in node.body:
                    visit(sub, held + newly)
                return
            if isinstance(node, ast.Call) and held:
                from repro.lint.flow.callgraph import resolve_call

                callee, _ = resolve_call(
                    self.project, node, fn, local_types
                )
                if callee is not None:
                    inner = self.may_acquire.get(callee.qualname, set())
                    site = f"{fn.module.path}:{node.lineno}"
                    for outer in held:
                        for lock in inner:
                            self._note_order(outer, lock, site, node, fn)
                for sub in ast.iter_child_nodes(node):
                    visit(sub, held)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn.node:
                    return
            for sub in ast.iter_child_nodes(node):
                visit(sub, held)

        visit(fn.node, [])
        return acquired

    def _note_order(
        self,
        outer: LockId,
        inner: LockId,
        site: str,
        node: ast.AST,
        fn: FunctionInfo,
    ) -> None:
        if outer == inner:
            if not outer.reentrant:
                self.findings.append(
                    Finding(
                        rule_id="RF302",
                        severity=Severity.ERROR,
                        message=(
                            f"non-reentrant lock '{outer.label()}' "
                            "acquired while already held — guaranteed "
                            "self-deadlock"
                        ),
                        file=fn.module.path,
                        line=getattr(node, "lineno", None),
                        column=getattr(node, "col_offset", None),
                    )
                )
            return
        self.order_edges.setdefault((outer, inner), site)

    def _check_lock_order(self) -> None:
        # Fixpoint: locks each function may acquire, transitively.
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for fn in self.project.functions.values():
                acquired: Set[LockId] = set()
                local_types = _LocalTypes(self.project, fn)
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Assign):
                        local_types.note_assign(node)
                own_info = None
                if fn.class_name is not None:
                    cls = fn.module.classes.get(fn.class_name)
                    if cls is not None:
                        own_info = self.class_info.get(cls.qualname)
                for node in ast.walk(fn.node):
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            expr = item.context_expr
                            if isinstance(expr, ast.Call):
                                expr = expr.func
                            if not isinstance(expr, ast.Attribute):
                                continue
                            receiver = local_types.type_of(expr.value)
                            info = None
                            if receiver is not None:
                                info = self.class_info.get(
                                    receiver.qualname
                                )
                            elif (
                                own_info is not None
                                and isinstance(expr.value, ast.Name)
                                and expr.value.id == "self"
                            ):
                                info = own_info
                            if info is not None and expr.attr in info.locks:
                                acquired.add(info.locks[expr.attr])
                for site in self.graph.callees_of(fn):
                    acquired |= self.may_acquire.get(
                        site.callee.qualname, set()
                    )
                if acquired != self.may_acquire.get(fn.qualname, set()):
                    self.may_acquire[fn.qualname] = acquired
                    changed = True
        # Collect order edges with the converged summaries.
        for fn in self.project.functions.values():
            if fn.qualname in self.scope:
                self._function_lock_context(fn)
        # Any A->B with B->A is an inversion.
        for (a, b), site in sorted(
            self.order_edges.items(), key=lambda kv: kv[1]
        ):
            if (b, a) in self.order_edges and (a.label(), b.label()) < (
                b.label(),
                a.label(),
            ):
                other = self.order_edges[(b, a)]
                path, _, line = site.rpartition(":")
                self.findings.append(
                    Finding(
                        rule_id="RF302",
                        severity=Severity.ERROR,
                        message=(
                            f"lock-order inversion: '{a.label()}' -> "
                            f"'{b.label()}' here but '{b.label()}' -> "
                            f"'{a.label()}' at {other}; two threads "
                            "taking opposite orders deadlock"
                        ),
                        file=path,
                        line=int(line) if line.isdigit() else None,
                    )
                )


def analyze_locks(project: Project, graph: CallGraph) -> List[Finding]:
    return LockAnalysis(project, graph).run()
