"""RF300 — RNG provenance: every draw flows from an explicit seed.

The reproduction's central promise — serial, parallel, and served runs
are bit-identical under one seed — dies the moment any random draw
comes from a stream that was not derived from an explicitly seeded
``SeedSequence``/``default_rng``. This analysis tracks generator
values *through* calls, returns, attributes, and containers and flags:

* ``default_rng()`` / ``SeedSequence()`` / ``PCG64()`` constructed
  with no seed (OS entropy: a different run every time), wherever the
  resulting stream is later drawn from — including two or more call
  hops away;
* a call that feeds a provably unseeded generator into a parameter
  some callee (transitively) draws from;
* one generator drawn from inside a worker-index loop when it was
  created outside the loop — worker streams must come from
  ``SeedSequence(seed, spawn_key=(index,))``, never be shared across
  index boundaries;
* two ``SeedSequence`` constructions in one module with the same
  entropy expression and the same constant ``spawn_key`` — duplicate
  spawn keys silently collapse two "independent" streams into one.

Provenance is a three-point lattice (seeded / unseeded / unknown);
only *provably unseeded* flows are reported, so dynamic dispatch and
external callers degrade to silence, not noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph, _LocalTypes, resolve_call
from repro.lint.flow.project import FunctionInfo, Project, attr_chain
from repro.lint.rules import CODE_RULES, Rule

RF300 = CODE_RULES.register(
    Rule(
        "RF300",
        "rng-provenance",
        Severity.ERROR,
        "random draw whose generator is not derived from an explicit "
        "seed (or is shared across worker-index boundaries); derive "
        "every stream from SeedSequence(seed, spawn_key=...) so runs "
        "are bit-reproducible",
    )
)

# Generator methods that consume the stream.
DRAW_METHODS = {
    "random",
    "integers",
    "normal",
    "standard_normal",
    "uniform",
    "choice",
    "shuffle",
    "permutation",
    "permuted",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "lognormal",
    "laplace",
    "triangular",
    "bytes",
}

# Provenance atoms. "unseeded" atoms carry their origin for messages.
SEEDED = "seeded"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Unseeded:
    """An unseeded-generator origin: where the entropy leak started."""

    origin: str  # "file:line" of the seedless construction
    via: str  # qualname of the function that constructed it


# A provenance value is a set of atoms: SEEDED / UNKNOWN strings,
# Unseeded records, and int param indices (symbolic pass-through).
Prov = frozenset


def _join(*values: Prov) -> Prov:
    out: Set = set()
    for v in values:
        out |= v
    return frozenset(out)


_EMPTY: Prov = frozenset()


@dataclass
class RngSummary:
    """Per-function facts the fixpoint propagates."""

    # Provenance atoms of returned generator values (ints = params).
    returns: Prov = _EMPTY
    # Param indices this function (transitively) draws from.
    draws_from_param: Set[int] = field(default_factory=set)

    def key(self) -> Tuple:
        return (self.returns, frozenset(self.draws_from_param))


class RngAnalysis:
    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.summaries: Dict[str, RngSummary] = {}
        self.findings: List[Finding] = []
        # Class-field provenance: "ClassQual.attr" -> Prov
        self.field_prov: Dict[str, Prov] = {}

    # -- driver ------------------------------------------------------------------

    def run(self) -> List[Finding]:
        functions = list(self.project.functions.values())
        # Fixpoint over summaries: return/draw facts flow along call
        # edges; the project call graph is shallow, so this converges
        # in a handful of rounds (bounded for safety).
        for _round in range(8):
            changed = False
            for fn in functions:
                summary = _FunctionPass(self, fn, emit=False).compute()
                old = self.summaries.get(fn.qualname)
                if old is None or old.key() != summary.key():
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        # Final pass emits findings with stable summaries.
        for fn in functions:
            _FunctionPass(self, fn, emit=True).compute()
        self._check_duplicate_spawn_keys()
        return self.findings

    # -- duplicate spawn keys ------------------------------------------------------

    def _check_duplicate_spawn_keys(self) -> None:
        """Two SeedSequence(entropy, spawn_key=CONST) sites in one
        module with identical entropy text and key collide."""
        for module in self.project.modules.values():
            sites: Dict[Tuple[str, Tuple], List[ast.Call]] = {}
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if chain is None or chain[-1] != "SeedSequence":
                    continue
                spawn_key = None
                for kw in node.keywords:
                    if kw.arg == "spawn_key":
                        spawn_key = kw.value
                key_const = _constant_tuple(spawn_key)
                if key_const is None or not node.args:
                    continue
                try:
                    entropy = ast.unparse(node.args[0])
                except Exception:  # pragma: no cover - unparse is total
                    continue
                sites.setdefault((entropy, key_const), []).append(node)
            for (entropy, key_const), nodes in sites.items():
                if len(nodes) < 2:
                    continue
                first = nodes[0]
                for node in nodes[1:]:
                    self.findings.append(
                        Finding(
                            rule_id="RF300",
                            severity=Severity.ERROR,
                            message=(
                                f"duplicate spawn_key {key_const!r} for "
                                f"entropy '{entropy}' (also constructed "
                                f"at line {first.lineno}); two streams "
                                "with one identity are one stream"
                            ),
                            file=module.path,
                            line=node.lineno,
                            column=node.col_offset,
                        )
                    )


def _constant_tuple(node: Optional[ast.AST]) -> Optional[Tuple]:
    if not isinstance(node, ast.Tuple):
        return None
    values = []
    for element in node.elts:
        if not isinstance(element, ast.Constant):
            return None
        values.append(element.value)
    return tuple(values)


class _FunctionPass:
    """One abstract-interpretation pass over a function body."""

    def __init__(
        self, analysis: RngAnalysis, fn: FunctionInfo, emit: bool
    ) -> None:
        self.analysis = analysis
        self.project = analysis.project
        self.fn = fn
        self.emit = emit
        self.env: Dict[str, Prov] = {}
        self.summary = RngSummary()
        self.local_types = _LocalTypes(self.project, fn)
        self.arg_names = fn.arg_names()
        # Worker-loop tracking: var -> loop depth at definition time;
        # draws at a deeper worker-loop depth than the definition mean
        # one stream is shared across index boundaries.
        self.worker_depth = 0
        self.def_worker_depth: Dict[str, int] = {}
        for index, name in enumerate(self.arg_names):
            if name == "self":
                continue
            if _is_rng_param(fn.node, index, name):
                self.env[name] = frozenset({index})
                self.def_worker_depth[name] = 0
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                self.local_types.note_assign(node)

    # -- entry -------------------------------------------------------------------

    def compute(self) -> RngSummary:
        for stmt in self.fn.node.body:
            self._stmt(stmt)
        return self.summary

    # -- statements --------------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs analyzed as their own functions? No —
            # they are not indexed; skip to avoid misattributing scopes.
        if isinstance(node, ast.Assign):
            value = self._expr(node.value)
            for target in node.targets:
                self._bind(target, value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._bind(node.target, self._expr(node.value))
        elif isinstance(node, ast.AugAssign):
            self._expr(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                value = self._expr(node.value)
                if value:
                    self.summary.returns = _join(
                        self.summary.returns, value
                    )
        elif isinstance(node, ast.Expr):
            self._expr(node.value)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            for sub in node.body + node.orelse:
                self._stmt(sub)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_value = self._expr(node.iter)
            worker_loop = _is_worker_loop(node)
            if worker_loop:
                self.worker_depth += 1
            self._bind(node.target, iter_value)
            for sub in node.body + node.orelse:
                self._stmt(sub)
            if worker_loop:
                self.worker_depth -= 1
        elif isinstance(node, (ast.While,)):
            self._expr(node.test)
            for sub in node.body + node.orelse:
                self._stmt(sub)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            for sub in node.body:
                self._stmt(sub)
        elif isinstance(node, ast.Try):
            for sub in (
                node.body + node.orelse + node.finalbody
            ):
                self._stmt(sub)
            for handler in node.handlers:
                for sub in handler.body:
                    self._stmt(sub)
        else:
            # Remaining statements: evaluate nested expressions so
            # draws inside them are still seen.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _bind(self, target: ast.AST, value: Prov) -> None:
        if isinstance(target, ast.Name):
            if value:
                self.env[target.id] = value
                self.def_worker_depth[target.id] = self.worker_depth
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            # self.attr = <generator>: record class-field provenance.
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.class_name is not None
                and value
            ):
                cls = self.fn.module.classes.get(self.fn.class_name)
                if cls is not None:
                    key = f"{cls.qualname}.{target.attr}"
                    resolved = self._resolve_atoms(value)
                    previous = self.analysis.field_prov.get(key, _EMPTY)
                    self.analysis.field_prov[key] = _join(
                        previous, resolved
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value)

    # -- expressions -------------------------------------------------------------

    def _expr(self, node: Optional[ast.AST]) -> Prov:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            value = self._expr(node.value)
            # obj.attr where obj has class-field provenance.
            receiver = self.local_types.type_of(node.value)
            if receiver is not None:
                key = f"{receiver.qualname}.{node.attr}"
                if key in self.analysis.field_prov:
                    return self.analysis.field_prov[key]
            # Keep container/attribute transparency: list_of_rngs[0],
            # pair.rng — provenance flows through.
            return value
        if isinstance(node, ast.Subscript):
            self._expr(node.slice)
            return self._expr(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return _join(*[self._expr(e) for e in node.elts])
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return _join(self._expr(node.body), self._expr(node.orelse))
        if isinstance(node, ast.BoolOp):
            return _join(*[self._expr(v) for v in node.values])
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in node.generators:
                self._bind(comp.target, self._expr(comp.iter))
            return self._expr(node.elt)
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Await):
            return self._expr(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._expr(node.value)
            self._bind(node.target, value)
            return value
        if isinstance(node, ast.Call):
            return self._call(node)
        # Other expressions (compare, binop, constants): walk children
        # for nested calls, carry no generator provenance.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
        return _EMPTY

    # -- calls -------------------------------------------------------------------

    def _call(self, node: ast.Call) -> Prov:
        arg_provs = [self._expr(a) for a in node.args]
        kw_provs = {
            kw.arg: self._expr(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        chain = attr_chain(node.func)
        constructed = self._rng_construction(
            node, chain, arg_provs, kw_provs
        )
        if constructed is not None:
            return constructed  # an RNG constructor, fully handled
        # rng.spawn(...) / rng.<draw>(...)
        if isinstance(node.func, ast.Attribute):
            receiver = self._expr(node.func.value)
            if receiver:
                if node.func.attr == "spawn":
                    return receiver
                if node.func.attr in DRAW_METHODS:
                    self._check_draw(node, node.func.value, receiver)
                    return _EMPTY
        # Interprocedural: resolve the callee and apply its summary.
        callee, is_method = resolve_call(
            self.project, node, self.fn, self.local_types
        )
        if callee is None:
            return _EMPTY
        summary = self.analysis.summaries.get(callee.qualname)
        if summary is None:
            return _EMPTY
        callee_args = callee.arg_names()
        offset = 1 if (is_method and callee_args[:1] == ["self"]) else 0

        def arg_prov_for(param_index: int) -> Prov:
            position = param_index - offset
            if 0 <= position < len(arg_provs):
                return arg_provs[position]
            if param_index < len(callee_args):
                name = callee_args[param_index]
                if name in kw_provs:
                    return kw_provs[name]
            return _EMPTY

        def arg_node_for(param_index: int) -> Optional[ast.AST]:
            position = param_index - offset
            if 0 <= position < len(node.args):
                return node.args[position]
            if param_index < len(callee_args):
                name = callee_args[param_index]
                for kw in node.keywords:
                    if kw.arg == name:
                        return kw.value
            return None

        # A param the callee draws from, fed an unseeded value here.
        for param_index in sorted(summary.draws_from_param):
            value = self._resolve_atoms(arg_prov_for(param_index))
            self._flag_unseeded_flow(node, value, callee, param_index)
            # A generator created outside the worker loop handed to a
            # callee that draws from it: sharing across the boundary,
            # one call hop removed from the direct-draw case.
            self._check_worker_sharing(node, arg_node_for(param_index))
            # Param atoms flowing onward: caller's own params feeding
            # a drawing callee make this function draw from them too.
            for atom in arg_prov_for(param_index):
                if isinstance(atom, int):
                    self.summary.draws_from_param.add(atom)
        # Returned provenance, with param atoms substituted.
        result: Set = set()
        for atom in summary.returns:
            if isinstance(atom, int):
                result |= arg_prov_for(atom)
            else:
                result.add(atom)
        return frozenset(result)

    def _rng_construction(
        self,
        node: ast.Call,
        chain: Optional[List[str]],
        arg_provs: List[Prov],
        kw_provs: Dict[str, Prov],
    ) -> Optional[Prov]:
        """Provenance of default_rng/SeedSequence/Generator/PCG64 calls;
        None when the call is not an RNG constructor."""
        if chain is None:
            return None
        tail = chain[-1]
        if tail not in {
            "default_rng",
            "SeedSequence",
            "Generator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }:
            return None
        # Only numpy's: require the chain to run through a random
        # module alias or be a direct from-import of numpy.random.
        if len(chain) > 1 and chain[-2] not in {"random", "np", "numpy"}:
            if not (len(chain) == 2 and chain[0] in {"nr", "npr"}):
                return None
        seed_kwargs = {"seed", "entropy", "key", "bit_generator"}
        seed_args = list(node.args) + [
            kw.value
            for kw in node.keywords
            if kw.arg in seed_kwargs
        ]
        seed_provs = list(arg_provs) + [
            prov
            for name, prov in kw_provs.items()
            if name in seed_kwargs
        ]
        if not seed_args or all(
            isinstance(a, ast.Constant) and a.value is None
            for a in seed_args
        ):
            atom = Unseeded(
                origin=f"{self.fn.module.path}:{node.lineno}",
                via=self.fn.qualname,
            )
            if self.emit:
                self.analysis.findings.append(
                    Finding(
                        rule_id="RF300",
                        severity=Severity.ERROR,
                        message=(
                            f"'{tail}()' constructed without an explicit "
                            "seed draws entropy from the OS; pass a seed "
                            "or a SeedSequence-derived key"
                        ),
                        file=self.fn.module.path,
                        line=node.lineno,
                        column=node.col_offset,
                    )
                )
            return frozenset({atom})
        # Seeded-ness is inherited when the seed is itself a tracked
        # generator/seed-sequence value; otherwise the explicit
        # argument is the seed. Provenances were computed once by the
        # caller — no re-evaluation (it would double-report findings
        # in nested argument expressions).
        inherited: Set = set()
        for prov in seed_provs:
            inherited |= set(self._resolve_atoms(prov))
        if any(isinstance(a, Unseeded) for a in inherited):
            return frozenset(
                {a for a in inherited if isinstance(a, Unseeded)}
            )
        return frozenset({SEEDED})

    # -- flagging ----------------------------------------------------------------

    def _resolve_atoms(self, value: Prov) -> Prov:
        """Substitute this function's own param atoms with UNKNOWN —
        callers are responsible for what they pass in."""
        out: Set = set()
        for atom in value:
            if isinstance(atom, int):
                out.add(UNKNOWN)
            else:
                out.add(atom)
        return frozenset(out)

    def _check_draw(
        self, node: ast.Call, receiver: ast.AST, value: Prov
    ) -> None:
        receiver_text = _safe_unparse(receiver)
        for atom in value:
            if isinstance(atom, int):
                self.summary.draws_from_param.add(atom)
        if not self.emit:
            return
        unseeded = [a for a in value if isinstance(a, Unseeded)]
        for atom in unseeded:
            local = atom.via == self.fn.qualname
            if local:
                # The seedless construction in this same function is
                # already reported at its own line; a second finding
                # at the draw adds nothing.
                continue
            self.analysis.findings.append(
                Finding(
                    rule_id="RF300",
                    severity=Severity.ERROR,
                    message=(
                        f"draw from '{receiver_text}', an unseeded "
                        f"generator constructed at {atom.origin} "
                        f"(via {atom.via}); seed it explicitly"
                    ),
                    file=self.fn.module.path,
                    line=node.lineno,
                    column=node.col_offset,
                )
            )
        # Worker-boundary sharing: drawing inside a worker-index loop
        # from a generator defined outside it.
        self._check_worker_sharing(node, receiver)

    def _check_worker_sharing(
        self, node: ast.Call, receiver: Optional[ast.AST]
    ) -> None:
        if not self.emit or self.worker_depth == 0:
            return
        if not isinstance(receiver, ast.Name):
            return
        defined_at = self.def_worker_depth.get(receiver.id)
        if defined_at is not None and defined_at < self.worker_depth:
            self.analysis.findings.append(
                Finding(
                    rule_id="RF300",
                    severity=Severity.ERROR,
                    message=(
                        f"generator '{receiver.id}' is shared across "
                        "worker-index iterations; derive a per-index "
                        "stream via SeedSequence(seed, "
                        "spawn_key=(index,)) so worker count cannot "
                        "change results"
                    ),
                    file=self.fn.module.path,
                    line=node.lineno,
                    column=node.col_offset,
                )
            )

    def _flag_unseeded_flow(
        self,
        node: ast.Call,
        value: Prov,
        callee: FunctionInfo,
        param_index: int,
    ) -> None:
        if not self.emit:
            return
        callee_args = callee.arg_names()
        param = (
            callee_args[param_index]
            if param_index < len(callee_args)
            else f"#{param_index}"
        )
        for atom in value:
            if isinstance(atom, Unseeded):
                self.analysis.findings.append(
                    Finding(
                        rule_id="RF300",
                        severity=Severity.ERROR,
                        message=(
                            f"unseeded generator (constructed at "
                            f"{atom.origin}) flows into parameter "
                            f"'{param}' of {callee.qualname}, which "
                            "draws from it"
                        ),
                        file=self.fn.module.path,
                        line=node.lineno,
                        column=node.col_offset,
                    )
                )


def _is_rng_param(node, index: int, name: str) -> bool:
    lowered = name.lower()
    if lowered in {"rng", "generator", "bitgen"} or lowered.endswith("_rng"):
        return True
    args = node.args
    all_args = args.posonlyargs + args.args + args.kwonlyargs
    if index < len(all_args):
        annotation = all_args[index].annotation
        if annotation is not None:
            text = _safe_unparse(annotation)
            return "Generator" in text or "SeedSequence" in text
    return False


def _is_worker_loop(node) -> bool:
    """A loop whose target iterates worker/estimate indices."""
    target_names: Set[str] = set()
    for sub in ast.walk(node.target):
        if isinstance(sub, ast.Name):
            target_names.add(sub.id.lower())
    if target_names & {"worker", "worker_id", "worker_index", "widx"}:
        return True
    iter_text = _safe_unparse(node.iter).lower()
    return "reserve_indices" in iter_text or "worker" in iter_text


def _safe_unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<expr>"


def analyze_rng(project: Project, graph: CallGraph) -> List[Finding]:
    return RngAnalysis(project, graph).run()
