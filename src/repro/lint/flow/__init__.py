"""Whole-program flow analyses (``RF3xx``) for ``repro.lint``.

Where the ``RL1xx`` rules see one file at a time, this package builds
a project-wide module/class/function index and a static call graph,
then proves (or refutes) the invariants the reproduction's guarantees
rest on:

* :mod:`~repro.lint.flow.rng` — **RF300** RNG provenance: every draw
  flows from an explicitly seeded stream, across call boundaries;
* :mod:`~repro.lint.flow.locks` — **RF301** guarded-field discipline
  and **RF302** lock-order inversions in the threaded serve layer;
* :mod:`~repro.lint.flow.cachekeys` — **RF303** cache-key soundness:
  floats reach keys only through the one-decimal quantizers.

Entry point: :func:`analyze_flow`. Accepted findings live in a
checked-in baseline (:mod:`~repro.lint.flow.baseline`); CI uploads
the run as SARIF (:mod:`~repro.lint.flow.sarif`).
"""

from repro.lint.flow.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    stale_entry_findings,
)
from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.driver import FLOW_RULES, FlowStats, analyze_flow
from repro.lint.flow.project import Project
from repro.lint.flow.sarif import render_sarif

__all__ = [
    "FLOW_RULES",
    "FlowStats",
    "analyze_flow",
    "Project",
    "CallGraph",
    "build_call_graph",
    "BaselineEntry",
    "load_baseline",
    "apply_baseline",
    "stale_entry_findings",
    "render_sarif",
]
