"""SARIF 2.1.0 emitter: findings as PR-diff annotations.

SARIF (Static Analysis Results Interchange Format) is what GitHub's
``codeql-action/upload-sarif`` ingests to annotate pull-request diffs
with findings inline. The emitter maps the lint's own schema onto it:

* one ``run`` from the ``repro.lint`` driver with the full rule
  catalog (id, name, help text) so the UI can render rule metadata;
* one ``result`` per finding, ``error`` -> ``"error"`` level,
  ``warning`` -> ``"warning"``; code findings carry a physical
  location (uri + line/column), domain findings a logical one.

The output is deterministic (sorted findings, sorted keys) so the
snapshot test can diff it byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.lint.findings import Finding, Severity, sort_findings

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalog(rule_ids: Iterable[str]) -> List[Dict]:
    """Metadata for every rule that appears in the findings (plus any
    registered rule, so the catalog is stable across runs)."""
    from repro.lint.rules import CODE_RULES, DOMAIN_RULES

    known = {}
    for registry in (CODE_RULES, DOMAIN_RULES):
        for rule in registry.all():
            known[rule.rule_id] = rule
    catalog = []
    for rule_id in sorted(set(rule_ids)):
        rule = known.get(rule_id)
        entry: Dict = {"id": rule_id}
        if rule is not None:
            entry["name"] = rule.name
            entry["shortDescription"] = {"text": rule.description}
            entry["defaultConfiguration"] = {
                "level": (
                    "error"
                    if rule.severity is Severity.ERROR
                    else "warning"
                )
            }
        catalog.append(entry)
    return catalog


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict:
    result: Dict = {
        "ruleId": finding.rule_id,
        "level": (
            "error" if finding.severity is Severity.ERROR else "warning"
        ),
        "message": {"text": finding.message},
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if finding.file is not None:
        region: Dict = {}
        if finding.line is not None:
            region["startLine"] = max(1, finding.line)
        if finding.column is not None:
            # SARIF columns are 1-based; ast columns are 0-based.
            region["startColumn"] = finding.column + 1
        location: Dict = {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.file.replace("\\", "/"),
                    "uriBaseId": "ROOTPATH",
                }
            }
        }
        if region:
            location["physicalLocation"]["region"] = region
        result["locations"] = [location]
    elif finding.component is not None:
        result["locations"] = [
            {
                "logicalLocations": [
                    {"fullyQualifiedName": finding.component}
                ]
            }
        ]
    return result


def render_sarif(findings: Iterable[Finding]) -> str:
    """The SARIF 2.1.0 document for ``findings`` as a JSON string."""
    ordered = sort_findings(findings)
    rules = _rule_catalog(f.rule_id for f in ordered)
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://example.invalid/docs/"
                            "static_analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": [_result(f, rule_index) for f in ordered],
                "originalUriBaseIds": {
                    "ROOTPATH": {"uri": "file:///"}
                },
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
