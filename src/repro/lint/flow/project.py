"""Whole-program model: every module, class, and function, indexed.

The per-file rules (``RL1xx``) see one tree at a time; the flow
analyses (``RF3xx``) need the *project* — which module a call lands
in, what class an attribute holds, which functions exist at all. A
:class:`Project` is that index, built from the shared
:class:`~repro.lint.astcache.AstCache` so the whole run still parses
each file exactly once.

Scope and soundness: resolution is static and name-based. Dynamic
dispatch (``getattr``, monkeypatching, callables stored in containers)
and star-imports are invisible; the analyses treat unresolved values
as *unknown* and stay silent about them rather than guessing (see
``docs/static_analysis.md`` for the full soundness statement).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.astcache import AstCache, collect_python_files, module_name_for

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One function or method, addressable by dotted qualname."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: FunctionNode
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def arg_names(self) -> List[str]:
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


@dataclass
class ClassInfo:
    """One class: methods, plus inferred attribute types for the
    light receiver-type inference the lock analysis needs."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    # Attribute name -> qualname of the project class it holds, from
    # ``self.x = SomeClass(...)`` assignments and annotations.
    field_types: Dict[str, str] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.qualname})"


@dataclass
class ModuleInfo:
    """One parsed module plus its import environment."""

    path: str
    name: Tuple[str, ...]
    tree: ast.Module
    lines: List[str]
    # Local alias -> fully dotted target: ``np`` -> ``numpy``,
    # ``front_search`` -> ``repro.serve.pipeline.front_search``.
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def dotted(self) -> str:
        return ".".join(self.name)


class Project:
    """Index of every module under the analyzed paths."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # dotted -> module
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}  # qualname -> fn
        self.classes: Dict[str, ClassInfo] = {}  # qualname -> class

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_paths(
        cls, paths: Sequence[str], cache: Optional[AstCache] = None
    ) -> "Project":
        if cache is None:
            cache = AstCache()
        project = cls()
        for file_path in collect_python_files(paths):
            entry = cache.load(file_path)
            if entry.tree is None:
                continue  # RL100 reports the syntax error
            project._add_module(file_path, entry.tree, entry.lines)
        project._infer_field_types()
        return project

    def _add_module(
        self, path: str, tree: ast.Module, lines: List[str]
    ) -> None:
        name = module_name_for(path)
        module = ModuleInfo(path=path, name=name, tree=tree, lines=lines)
        _collect_imports(tree, module)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module.dotted}.{node.name}"
                info = FunctionInfo(qual, node.name, module, node)
                module.functions[node.name] = info
                self.functions[qual] = info
            elif isinstance(node, ast.ClassDef):
                cqual = f"{module.dotted}.{node.name}"
                cinfo = ClassInfo(cqual, node.name, module, node)
                for sub in node.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        fqual = f"{cqual}.{sub.name}"
                        finfo = FunctionInfo(
                            fqual, sub.name, module, sub, class_name=node.name
                        )
                        cinfo.methods[sub.name] = finfo
                        self.functions[fqual] = finfo
                self.classes[cqual] = cinfo
                module.classes[node.name] = cinfo
        self.modules[module.dotted] = module
        self.modules_by_path[path] = module

    # -- light type inference ------------------------------------------------------

    def _infer_field_types(self) -> None:
        """``self.x = SomeClass(...)`` -> field_types[x] = class qualname.

        One pass after every module is indexed, so forward references
        across modules resolve.
        """
        for cinfo in self.classes.values():
            for method in cinfo.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    target_class = self._constructed_class(
                        node.value, cinfo.module
                    )
                    if target_class is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            cinfo.field_types[target.attr] = (
                                target_class.qualname
                            )

    def _constructed_class(
        self, value: ast.AST, module: ModuleInfo
    ) -> Optional[ClassInfo]:
        if not isinstance(value, ast.Call):
            return None
        resolved = self.resolve_name(value.func, module)
        if isinstance(resolved, ClassInfo):
            return resolved
        return None

    # -- name resolution -----------------------------------------------------------

    def resolve_dotted(
        self, dotted: str
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        """A fully dotted name -> the project object it names, if any."""
        if dotted in self.modules:
            return self.modules[dotted]
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        return None

    def resolve_name(
        self, node: ast.AST, module: ModuleInfo
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        """Resolve ``Name``/``Attribute`` chains through the module's
        imports to a project function, class, or module."""
        chain = attr_chain(node)
        if chain is None:
            return None
        head, rest = chain[0], chain[1:]
        # Locally defined first; imports shadow-resolve otherwise.
        candidates: List[str] = []
        if head in module.functions and not rest:
            return module.functions[head]
        if head in module.classes:
            target: Union[ClassInfo, None] = module.classes[head]
            if not rest:
                return target
            if len(rest) == 1 and rest[0] in target.methods:
                return target.methods[rest[0]]
            return None
        if head in module.imports:
            candidates.append(".".join([module.imports[head]] + rest))
        # Same-package sibling reference (``from . import x`` rewrites
        # into absolute form during import collection, so this is only
        # the fallback for unimported names).
        resolved = None
        for dotted in candidates:
            resolved = self.resolve_dotted(dotted)
            if resolved is not None:
                break
            # ``module.Class.method`` — peel the method name.
            if "." in dotted:
                prefix, attr = dotted.rsplit(".", 1)
                owner = self.resolve_dotted(prefix)
                if isinstance(owner, ClassInfo) and attr in owner.methods:
                    return owner.methods[attr]
                if isinstance(owner, ModuleInfo):
                    if attr in owner.functions:
                        return owner.functions[attr]
                    if attr in owner.classes:
                        return owner.classes[attr]
        return resolved

    def class_of(self, qualname: Optional[str]) -> Optional[ClassInfo]:
        if qualname is None:
            return None
        return self.classes.get(qualname)


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _collect_imports(tree: ast.Module, module: ModuleInfo) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.asname is not None:
                    module.imports[local] = alias.name
                else:
                    module.imports[local] = alias.name.split(".")[0]
                    # ``import a.b`` also makes ``a.b`` addressable.
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: anchor at this module's package.
                package = list(module.name[: -node.level])
                if base:
                    package.append(base)
                base = ".".join(package)
            for alias in node.names:
                if alias.name == "*":
                    continue  # invisible to static resolution
                local = alias.asname or alias.name
                module.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
