"""Project-wide call graph with static, name-based edge resolution.

Each edge links a call expression in one function to the
:class:`~repro.lint.flow.project.FunctionInfo` it statically resolves
to. Resolution covers the forms this codebase actually uses:

* plain calls to module-level functions (local or imported),
* ``module.function(...)`` through import aliases,
* ``self.method(...)`` within a class,
* ``self.field.method(...)`` and ``local_var.method(...)`` where the
  receiver's class is known from constructor assignments or parameter
  annotations (the light type inference in :class:`Project`),
* constructor calls ``SomeClass(...)`` (edge to ``__init__``).

Anything else — ``getattr``, callables in containers, duck-typed
receivers — yields no edge. The analyses built on top treat missing
edges as *unknown*, never as proof of absence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    attr_chain,
)


@dataclass
class CallSite:
    """One resolved call: the AST node and the callee."""

    node: ast.Call
    caller: FunctionInfo
    callee: FunctionInfo
    # True when the call is ``obj.method()`` on an instance (so the
    # callee's ``self`` binds to the receiver, not to an argument).
    is_method_call: bool = False


@dataclass
class CallGraph:
    project: Project
    # caller qualname -> outgoing call sites
    calls: Dict[str, List[CallSite]] = field(default_factory=dict)
    # callee qualname -> incoming call sites
    callers: Dict[str, List[CallSite]] = field(default_factory=dict)
    resolved = 0
    unresolved = 0

    def callees_of(self, fn: FunctionInfo) -> List[CallSite]:
        return self.calls.get(fn.qualname, [])

    def callers_of(self, fn: FunctionInfo) -> List[CallSite]:
        return self.callers.get(fn.qualname, [])

    def reachable_from(self, roots: List[FunctionInfo]) -> Set[str]:
        """Qualnames reachable (transitively) from the given roots."""
        seen: Set[str] = set()
        stack = [r.qualname for r in roots]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for site in self.calls.get(qual, []):
                stack.append(site.callee.qualname)
        return seen


class _LocalTypes:
    """Receiver types inside one function: param annotations plus
    ``x = SomeClass(...)`` constructor assignments."""

    def __init__(
        self, project: Project, fn: FunctionInfo
    ) -> None:
        self.project = project
        self.module = fn.module
        self.vars: Dict[str, str] = {}  # name -> class qualname
        self.self_class: Optional[ClassInfo] = None
        if fn.class_name is not None:
            self.self_class = fn.module.classes.get(fn.class_name)
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            annotation = arg.annotation
            # Unwrap Optional["X"] / string annotations minimally.
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                try:
                    annotation = ast.parse(
                        annotation.value, mode="eval"
                    ).body
                except SyntaxError:
                    continue
            resolved = project.resolve_name(annotation, fn.module)
            if isinstance(resolved, ClassInfo):
                self.vars[arg.arg] = resolved.qualname

    def note_assign(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.Call):
            return
        resolved = self.project.resolve_name(node.value.func, self.module)
        if not isinstance(resolved, ClassInfo):
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.vars[target.id] = resolved.qualname

    def type_of(self, expr: ast.AST) -> Optional[ClassInfo]:
        """Class of ``expr`` when statically known, else None."""
        chain = attr_chain(expr)
        if chain is None:
            return None
        head, rest = chain[0], chain[1:]
        current: Optional[ClassInfo]
        if head == "self" and self.self_class is not None:
            current = self.self_class
        elif head in self.vars:
            current = self.project.class_of(self.vars[head])
        else:
            return None
        for part in rest:
            if current is None:
                return None
            next_qual = current.field_types.get(part)
            current = self.project.class_of(next_qual)
        return current


def resolve_call(
    project: Project,
    call: ast.Call,
    fn: FunctionInfo,
    local_types: _LocalTypes,
) -> Tuple[Optional[FunctionInfo], bool]:
    """(callee, is_method_call) for one call node, if resolvable."""
    func = call.func
    # obj.method(...) with a known receiver class.
    if isinstance(func, ast.Attribute):
        receiver_class = local_types.type_of(func.value)
        if receiver_class is not None:
            method = receiver_class.methods.get(func.attr)
            if method is not None:
                return method, True
            return None, False
    resolved = project.resolve_name(func, fn.module)
    if isinstance(resolved, FunctionInfo):
        is_method = (
            resolved.is_method
            and isinstance(func, ast.Attribute)
        )
        return resolved, is_method
    if isinstance(resolved, ClassInfo):
        init = resolved.methods.get("__init__")
        if init is not None:
            return init, True
        return None, False
    return None, False


def build_call_graph(project: Project) -> CallGraph:
    graph = CallGraph(project)
    for fn in project.functions.values():
        local_types = _LocalTypes(project, fn)
        # Constructor assignments first (flow-insensitive): a call may
        # lexically precede the assignment that types its receiver.
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                local_types.note_assign(node)
        sites: List[CallSite] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee, is_method = resolve_call(
                    project, node, fn, local_types
                )
                if callee is None:
                    graph.unresolved += 1
                    continue
                graph.resolved += 1
                site = CallSite(node, fn, callee, is_method)
                sites.append(site)
                graph.callers.setdefault(
                    callee.qualname, []
                ).append(site)
        if sites:
            graph.calls[fn.qualname] = sites
    return graph
