"""Rule framework: registry, metadata, and inline suppression.

A :class:`Rule` is pure metadata (id, name, default severity, rationale)
shared by the report renderer and the docs. Checkers — AST visitors or
domain functions — reference their rule and emit
:class:`~repro.lint.findings.Finding` objects.

Inline suppression mirrors the usual lint idiom::

    entries[0.5] = ms  # repro-lint: disable=RL102
    entries[0.5] = ms  # repro-lint: disable=RL102,RL103
    entries[0.5] = ms  # repro-lint: disable

A bare ``disable`` suppresses every rule on that line; named forms
suppress only the listed ids. Suppression applies to *code* findings
(they have a file/line); domain findings cannot be suppressed inline —
fix the artifact instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.findings import Finding, Severity

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?"
)


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    rule_id: str
    name: str
    severity: Severity
    description: str


class RuleRegistry:
    """Id-keyed rule collection with select/ignore filtering."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule.rule_id}")
        self._rules[rule.rule_id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def all(self) -> List[Rule]:
        return sorted(self._rules.values(), key=lambda r: r.rule_id)

    def resolve(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> Set[str]:
        """Active rule ids after --select / --ignore filtering."""
        ids = set(self._rules)
        if select:
            unknown = set(select) - ids
            if unknown:
                raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
            ids = set(select)
        if ignore:
            ids -= set(ignore)
        return ids


CODE_RULES = RuleRegistry()
DOMAIN_RULES = RuleRegistry()


def suppressed_rules(source_line: str) -> Optional[Set[str]]:
    """Rule ids suppressed by an inline comment on ``source_line``.

    Returns ``None`` when the line has no suppression marker, the empty
    set for the bare ``disable`` form (suppress everything), and the set
    of named ids otherwise.
    """
    match = _SUPPRESS_RE.search(source_line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {r.strip() for r in rules.split(",") if r.strip()}


def filter_suppressed(
    findings: Iterable[Finding], source_lines: Sequence[str]
) -> List[Finding]:
    """Drop code findings whose source line carries a matching
    ``# repro-lint: disable`` marker."""
    kept: List[Finding] = []
    for f in findings:
        if f.line is not None and 1 <= f.line <= len(source_lines):
            marker = suppressed_rules(source_lines[f.line - 1])
            if marker is not None and (not marker or f.rule_id in marker):
                continue
        kept.append(f)
    return kept
