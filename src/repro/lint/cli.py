"""``python -m repro.lint`` — run the code lint and/or domain checkers.

Code lint (AST rules, RL1xx)::

    python -m repro.lint src                 # lint a tree
    python -m repro.lint src --strict        # warnings fail too
    python -m repro.lint src --format json

Domain checks (RD2xx) over the bundled presets::

    python -m repro.lint --domain                          # all presets
    python -m repro.lint --domain --preset imagenet_a      # one preset
    python -m repro.lint --domain --preset imagenet_a \\
        --build-lut --device edge                          # + LUT coverage
    python -m repro.lint --domain --lut results/lut.json \\
        --preset imagenet_a                                # saved LUT

Run-directory validation (RD211) over a crash-safe run directory::

    python -m repro.lint --run-dir results/run1

Whole-program flow analyses (RF3xx) with a baseline and SARIF output::

    python -m repro.lint src --flow
    python -m repro.lint src --flow --strict --baseline lint_baseline.json
    python -m repro.lint src --flow --sarif findings.sarif --stats

Exit status: 0 when clean, 1 when any error (or, with ``--strict``, any
finding at all) is reported, 2 on usage errors (including a ``--lut``,
``--run-dir``, or ``--baseline`` path that does not exist).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.findings import Finding, exit_code, render_json, render_text

_PRESETS = ("imagenet_a", "imagenet_b", "mini", "proxy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="static consistency checks for the HSCoNAS search stack",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to run the AST code lint over",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings as well as errors",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", metavar="RULE",
        help="only run these code-rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these code-rule ids (repeatable)",
    )
    parser.add_argument(
        "--domain", action="store_true",
        help="run the domain checkers (space/shrink-plan/config validity)",
    )
    parser.add_argument(
        "--preset", action="append", choices=_PRESETS, metavar="NAME",
        help=f"presets to check (default: all of {', '.join(_PRESETS)})",
    )
    parser.add_argument(
        "--build-lut", action="store_true",
        help="build the preset's LUT on --device and check full coverage",
    )
    parser.add_argument(
        "--lut", metavar="FILE",
        help="check coverage of a saved LUT JSON instead of building one",
    )
    parser.add_argument(
        "--device", choices=("gpu", "cpu", "edge"), default="edge",
        help="device for --build-lut (default: edge)",
    )
    parser.add_argument(
        "--run-dir", action="append", metavar="DIR",
        help="validate a crash-safe run directory (RD211; repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="run the whole-program flow analyses (RF3xx) over paths",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings accepted in this baseline JSON file "
        "(stale entries are reported as warnings)",
    )
    parser.add_argument(
        "--sarif", metavar="OUT",
        help="additionally write the findings as SARIF 2.1.0 to OUT",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print files/functions analyzed, parse counts, and wall "
        "time after the report",
    )
    return parser


def _list_rules() -> str:
    # Importing the rule modules populates the registries.
    import repro.lint.ast_rules  # noqa: F401
    import repro.lint.config_check  # noqa: F401
    import repro.lint.flow  # noqa: F401
    import repro.lint.lut_check  # noqa: F401
    import repro.lint.runstate_check  # noqa: F401
    import repro.lint.space_check  # noqa: F401
    from repro.lint.rules import CODE_RULES, DOMAIN_RULES

    lines = []
    for title, registry in (
        ("code rules", CODE_RULES),
        ("domain rules", DOMAIN_RULES),
    ):
        lines.append(f"{title}:")
        for rule in registry.all():
            lines.append(
                f"  {rule.rule_id} {rule.name} [{rule.severity}] — "
                f"{rule.description}"
            )
    return "\n".join(lines)


def _domain_findings(args: argparse.Namespace) -> List[Finding]:
    # Imports are deferred so that plain code-lint runs do not pay for
    # the numpy-backed search stack.
    from repro.core.search import HSCoNASConfig
    from repro.core.shrinking import default_stage_layers
    from repro.lint.config_check import check_pipeline_config
    from repro.lint.lut_check import check_lut_coverage
    from repro.lint.space_check import check_shrink_plan, check_space
    from repro.space import config as space_config
    from repro.space.search_space import SearchSpace

    findings: List[Finding] = []
    presets = args.preset or list(_PRESETS)
    findings.extend(
        check_pipeline_config(HSCoNASConfig(), component="pipeline:defaults")
    )
    for preset in presets:
        space = SearchSpace(getattr(space_config, preset)())
        findings.extend(check_space(space))
        findings.extend(
            check_shrink_plan(space, default_stage_layers(space.num_layers))
        )
        if args.lut:
            from repro.hardware.lut import LatencyLUT

            with open(args.lut, "r", encoding="utf-8") as handle:
                lut = LatencyLUT.from_json(handle.read())
            findings.extend(check_lut_coverage(space, lut))
        elif args.build_lut:
            from repro.hardware.calibration import calibrated_devices
            from repro.hardware.lut import LatencyLUT

            device = calibrated_devices()[args.device]
            lut = LatencyLUT.build(space, device, samples_per_cell=1)
            findings.extend(
                check_lut_coverage(
                    space, lut, expected_device=device.spec.key
                )
            )
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths and not args.domain and not args.run_dir:
        parser.error(
            "nothing to do: pass paths to lint, --domain, and/or --run-dir"
        )
    if args.lut and args.build_lut:
        parser.error("--lut and --build-lut are mutually exclusive")
    if args.lut and not os.path.exists(args.lut):
        print(
            f"error: LUT file {args.lut} does not exist; point --lut at a "
            "saved LUT JSON (written by 'repro predict') or use --build-lut",
            file=sys.stderr,
        )
        return 2
    if args.flow and not args.paths:
        parser.error("--flow needs paths to analyze")
    if args.baseline and not os.path.exists(args.baseline):
        print(
            f"error: baseline file {args.baseline} does not exist; "
            "create it with an empty suppression list "
            '({"version": 1, "suppressions": []}) or drop --baseline',
            file=sys.stderr,
        )
        return 2

    # One AST cache for the whole run: the per-file rules and the flow
    # analyses share parsed trees, so each file is parsed exactly once.
    from repro.lint.astcache import AstCache

    cache = AstCache()
    flow_stats = None
    findings: List[Finding] = []
    if args.paths:
        from repro.lint.ast_rules import lint_paths

        if args.flow:
            import repro.lint.flow  # noqa: F401 - registers RF rules

        try:
            findings.extend(
                lint_paths(
                    args.paths,
                    select=args.select,
                    ignore=args.ignore,
                    cache=cache,
                )
            )
        except KeyError as exc:
            parser.error(str(exc))
        if args.flow:
            from repro.lint.flow import analyze_flow

            flow_findings, flow_stats = analyze_flow(
                args.paths,
                cache=cache,
                select=args.select,
                ignore=args.ignore,
            )
            findings.extend(flow_findings)
    if args.domain:
        findings.extend(_domain_findings(args))
    if args.run_dir:
        from repro.lint.runstate_check import check_run_dir

        for run_dir in args.run_dir:
            if not os.path.isdir(run_dir):
                print(
                    f"error: run directory {run_dir} does not exist",
                    file=sys.stderr,
                )
                return 2
            findings.extend(check_run_dir(run_dir))

    suppressed = 0
    if args.baseline:
        from repro.lint.flow.baseline import (
            apply_baseline,
            load_baseline,
            stale_entry_findings,
        )

        try:
            entries = load_baseline(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed, stale = apply_baseline(findings, entries)
        findings.extend(stale_entry_findings(stale, args.baseline))

    if args.sarif:
        from repro.lint.flow.sarif import render_sarif
        from repro.runstate.atomic import atomic_write_text

        atomic_write_text(args.sarif, render_sarif(findings))

    if args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("repro.lint: no findings")
    if args.stats:
        parse_stats = cache.stats()
        lines = [
            f"repro.lint stats: {parse_stats['files']} files, "
            f"{parse_stats['parses']} parses, "
            f"{parse_stats['hits']} cache hits"
        ]
        if flow_stats is not None:
            lines.append(f"repro.lint stats: {flow_stats.format()}")
        if args.baseline:
            lines.append(
                f"repro.lint stats: {suppressed} finding(s) suppressed "
                f"by {args.baseline}"
            )
        print("\n".join(lines))
    return exit_code(findings, strict=args.strict)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
