"""Pareto-front extraction for (latency, accuracy) clouds."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def pareto_front(
    points: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Non-dominated subset: minimize the first coordinate (latency),
    maximize the second (accuracy). Returned sorted by latency."""
    ordered = sorted(points, key=lambda p: (p[0], -p[1]))
    front: List[Tuple[float, float]] = []
    best_acc = float("-inf")
    for lat, acc in ordered:
        if acc > best_acc:
            front.append((lat, acc))
            best_acc = acc
    return front
