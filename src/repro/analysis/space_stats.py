"""Monte-Carlo statistics of a search (sub)space.

Used to characterize what a space *offers* before searching it — the
latency/FLOPs/depth distribution a uniform sampler sees — and to
diagnose shrinking decisions (how a pinned operator shifts those
distributions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


@dataclass(frozen=True)
class Distribution:
    """Five-number summary + mean of a sampled quantity."""

    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @classmethod
    def from_samples(cls, values: np.ndarray) -> "Distribution":
        if values.size == 0:
            raise ValueError("no samples")
        return cls(
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            p25=float(np.percentile(values, 25)),
            median=float(np.percentile(values, 50)),
            p75=float(np.percentile(values, 75)),
            maximum=float(values.max()),
        )

    def __str__(self) -> str:
        return (
            f"mean {self.mean:.3g} ± {self.std:.3g} "
            f"[{self.minimum:.3g} | {self.p25:.3g} {self.median:.3g} "
            f"{self.p75:.3g} | {self.maximum:.3g}]"
        )


@dataclass(frozen=True)
class SpaceStats:
    """Sampled distributions of a space's key quantities."""

    num_samples: int
    flops: Distribution
    params: Distribution
    depth: Distribution
    latency_ms: Optional[Distribution] = None


def space_statistics(
    space: SearchSpace,
    num_samples: int = 200,
    seed: int = 0,
    latency_fn: Optional[Callable[[Architecture], float]] = None,
) -> SpaceStats:
    """Estimate the space's FLOPs/params/depth (and latency) distributions.

    ``latency_fn`` is optional because it requires a device; pass
    ``device.latency_ms`` or a predictor's ``predict`` bound to a space.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = np.random.default_rng(seed)
    archs = [space.sample(rng) for _ in range(num_samples)]
    flops = np.array([space.arch_flops(a) for a in archs])
    params = np.array([space.arch_params(a) for a in archs])
    depth = np.array([float(a.depth()) for a in archs])
    latency = None
    if latency_fn is not None:
        latency = Distribution.from_samples(
            np.array([latency_fn(a) for a in archs])
        )
    return SpaceStats(
        num_samples=num_samples,
        flops=Distribution.from_samples(flops),
        params=Distribution.from_samples(params),
        depth=Distribution.from_samples(depth),
        latency_ms=latency,
    )


def feasible_fraction(
    space: SearchSpace,
    latency_fn: Callable[[Architecture], float],
    target_ms: float,
    tolerance: float = 0.05,
    num_samples: int = 200,
    seed: int = 0,
) -> float:
    """Fraction of uniform samples within ``tolerance`` of the target.

    A sanity metric before searching: if the fraction is ~0, the EA is
    hunting a needle (expect slower convergence); if it is large, random
    search would already do fine.
    """
    if target_ms <= 0 or tolerance < 0:
        raise ValueError("target must be positive and tolerance non-negative")
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(num_samples):
        lat = latency_fn(space.sample(rng))
        if abs(lat / target_ms - 1.0) <= tolerance:
            hits += 1
    return hits / num_samples
