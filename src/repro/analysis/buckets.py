"""FLOPs/Params-bucket latency-spread analysis (paper Fig. 2).

Fig. 2's point is that architectures with near-identical FLOPs (or
parameter counts) differ substantially in device latency. We quantify
this by bucketing architectures on the hardware-agnostic metric and
measuring the within-bucket latency spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class BucketStats:
    """Latency statistics of one metric bucket."""

    metric_low: float
    metric_high: float
    count: int
    latency_min: float
    latency_max: float
    latency_mean: float

    @property
    def spread_ratio(self) -> float:
        """max/min latency inside the bucket (1.0 = no spread)."""
        if self.latency_min <= 0:
            raise ValueError("latencies must be positive")
        return self.latency_max / self.latency_min


def bucket_spread(
    metric: Sequence[float],
    latency: Sequence[float],
    num_buckets: int = 8,
    min_count: int = 3,
) -> List[BucketStats]:
    """Bucket by ``metric`` quantiles; report per-bucket latency spread.

    Buckets with fewer than ``min_count`` members are dropped (their
    spread would be meaningless).
    """
    m = np.asarray(metric, dtype=np.float64)
    lat = np.asarray(latency, dtype=np.float64)
    if m.shape != lat.shape or m.ndim != 1:
        raise ValueError("metric and latency must be equal-length 1-D sequences")
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    edges = np.quantile(m, np.linspace(0.0, 1.0, num_buckets + 1))
    stats: List[BucketStats] = []
    for i in range(num_buckets):
        lo, hi = edges[i], edges[i + 1]
        if i == num_buckets - 1:
            mask = (m >= lo) & (m <= hi)
        else:
            mask = (m >= lo) & (m < hi)
        if mask.sum() < min_count:
            continue
        bucket_lat = lat[mask]
        stats.append(
            BucketStats(
                metric_low=float(lo),
                metric_high=float(hi),
                count=int(mask.sum()),
                latency_min=float(bucket_lat.min()),
                latency_max=float(bucket_lat.max()),
                latency_mean=float(bucket_lat.mean()),
            )
        )
    return stats
