"""Analysis utilities: FLOPs buckets, Pareto fronts, correlation studies."""

from repro.analysis.buckets import BucketStats, bucket_spread
from repro.analysis.pareto import pareto_front
from repro.analysis.space_stats import (
    Distribution,
    SpaceStats,
    feasible_fraction,
    space_statistics,
)
from repro.analysis.traces import (
    area_under_trace,
    best_so_far,
    evaluation_trace,
    evaluations_to_reach,
)

__all__ = [
    "BucketStats",
    "bucket_spread",
    "pareto_front",
    "best_so_far",
    "evaluation_trace",
    "evaluations_to_reach",
    "area_under_trace",
    "Distribution",
    "SpaceStats",
    "space_statistics",
    "feasible_fraction",
]
