"""Search-convergence traces: best-so-far score vs evaluation count.

Used by the EA / REINFORCE / random-search comparisons: a searcher's
quality is a *curve* (how fast it gets good), not just its endpoint.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.evolution import SearchResult


def best_so_far(scores: Sequence[float]) -> List[float]:
    """Running maximum of a score sequence."""
    out: List[float] = []
    best = float("-inf")
    for score in scores:
        best = max(best, score)
        out.append(best)
    return out


def evaluation_trace(result: SearchResult) -> List[Tuple[int, float]]:
    """(evaluations used, best score so far) after each round.

    Works for any searcher that reports :class:`GenerationRecord` rounds
    (the EA, REINFORCE, and random search all do).
    """
    trace: List[Tuple[int, float]] = []
    seen = 0
    best = float("-inf")
    for gen in result.generations:
        seen += len(gen.population)
        best = max(best, gen.best.score)
        trace.append((seen, best))
    return trace


def evaluations_to_reach(
    result: SearchResult, score: float
) -> int:
    """Evaluations the searcher needed to first reach ``score``.

    Returns -1 if the score was never reached. Counts within rounds at
    round granularity (the finest the record keeps).
    """
    for seen, best in evaluation_trace(result):
        if best >= score:
            return seen
    return -1


def area_under_trace(result: SearchResult) -> float:
    """Evaluation-weighted mean of the best-so-far curve.

    A searcher that gets good early scores higher; two searchers with
    the same endpoint are separated by how quickly they climbed.
    """
    trace = evaluation_trace(result)
    if not trace:
        raise ValueError("empty search result")
    total = 0.0
    prev_evals = 0
    for evals, best in trace:
        total += best * (evals - prev_evals)
        prev_evals = evals
    return total / prev_evals
