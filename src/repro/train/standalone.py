"""Train one fixed architecture from scratch.

The paper trains discovered HSCoNets from scratch with the supernet
recipe plus a 5-epoch learning-rate warmup. Here the same applies on
the proxy task: a fresh supernet instance is built, a single
architecture is activated permanently, and only that path trains.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data.loader import BatchLoader
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD, clip_grad_norm
from repro.nn.schedule import WarmupCosineSchedule
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace
from repro.supernet.model import Supernet
from repro.train.metrics import top_k_accuracy
from repro.train.supernet_trainer import TrainConfig


class StandaloneTrainer:
    """From-scratch training of a single architecture."""

    def __init__(
        self,
        space: SearchSpace,
        arch: Architecture,
        loader: BatchLoader,
        config: Optional[TrainConfig] = None,
        seed: int = 0,
    ):
        self.space = space
        self.arch = arch
        self.loader = loader
        self.config = config if config is not None else TrainConfig(base_lr=0.1)
        self.model = Supernet(space, seed=seed)
        self.model.set_architecture(arch)
        self.criterion = CrossEntropyLoss(self.config.label_smoothing)
        self.optimizer = SGD(
            self.model.parameters(),
            lr=self.config.base_lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def train(self, epochs: int, warmup_epochs: int = 1) -> List[float]:
        """Warmup + cosine training; returns per-epoch mean losses."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        steps_per_epoch = len(self.loader)
        schedule = WarmupCosineSchedule(
            self.config.base_lr,
            total_steps=epochs * steps_per_epoch,
            warmup_steps=min(warmup_epochs * steps_per_epoch,
                             epochs * steps_per_epoch - 1),
        )
        self.model.train()
        losses_per_epoch: List[float] = []
        step = 0
        for _ in range(epochs):
            losses = []
            for batch, labels in self.loader.epoch(augment=True):
                logits = self.model(batch)
                loss = self.criterion(logits, labels)
                self.optimizer.zero_grad()
                self.model.backward(self.criterion.backward())
                clip_grad_norm(self.model.parameters(), self.config.grad_clip)
                self.optimizer.lr = schedule.lr_at(step)
                self.optimizer.step()
                losses.append(loss)
                step += 1
            losses_per_epoch.append(float(np.mean(losses)))
        return losses_per_epoch

    def evaluate(self, images: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
        """Top-k accuracy on held-out data."""
        self.model.eval()
        logits = self.model(images)
        self.model.train()
        return top_k_accuracy(logits, labels, k=k)
