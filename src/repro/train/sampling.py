"""Path-sampling strategies for supernet training.

The paper trains with uniform path sampling. A known refinement
(FairNAS) enforces *strict fairness*: within every block of K steps,
each layer activates each of its K candidate operators exactly once (in
per-layer shuffled order), so no operator's shared weights fall behind
by sampling luck. Both strategies are provided; the trainer takes one
as a pluggable component.
"""

from __future__ import annotations

from typing import List, Protocol

import numpy as np

from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


class PathSampler(Protocol):
    """Produces one training path per SGD step."""

    def next_path(
        self, space: SearchSpace, rng: np.random.Generator
    ) -> Architecture: ...


class UniformSampler:
    """The paper's strategy: independent uniform draws each step."""

    def next_path(
        self, space: SearchSpace, rng: np.random.Generator
    ) -> Architecture:
        return space.sample(rng)


class FairSampler:
    """Strict-fairness operator scheduling (FairNAS-style).

    Maintains, per layer, a shuffled queue of the layer's candidate
    operators; every step pops one per layer, reshuffling when a queue
    empties. Over any window of ``K`` steps each operator of a layer is
    activated exactly once. Channel factors stay uniformly sampled (the
    mask reuses the *same* shared weights, so fairness does not apply).
    """

    def __init__(self) -> None:
        self._queues: List[List[int]] = []

    def _refill(self, space: SearchSpace, layer: int,
                rng: np.random.Generator) -> None:
        ops = list(space.candidate_ops[layer])
        rng.shuffle(ops)
        self._queues[layer] = ops

    def next_path(
        self, space: SearchSpace, rng: np.random.Generator
    ) -> Architecture:
        if len(self._queues) != space.num_layers:
            self._queues = [[] for _ in range(space.num_layers)]
        ops = []
        for layer in range(space.num_layers):
            if not self._queues[layer]:
                self._refill(space, layer, rng)
            ops.append(self._queues[layer].pop())
        factors = tuple(
            float(rng.choice(space.candidate_factors[layer]))
            for layer in range(space.num_layers)
        )
        return Architecture(tuple(ops), factors)
