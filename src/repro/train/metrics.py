"""Classification metrics."""

from __future__ import annotations

import numpy as np


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose true label is in the top-k predictions."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, K), got {logits.shape}")
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k={k} out of range for {logits.shape[1]} classes")
    if len(labels) != len(logits):
        raise ValueError("labels and logits must have equal length")
    if len(labels) == 0:
        raise ValueError("empty batch")
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == np.asarray(labels)[:, None]).any(axis=1)
    return float(hits.mean())
