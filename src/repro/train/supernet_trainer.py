"""Single-path weight-sharing supernet training.

Each step samples one architecture uniformly from the (current, possibly
shrunk) search space, activates it in the supernet, and runs one SGD
step — the uniform-sampling one-shot recipe the paper builds on. The
paper's optimizer settings (SGD momentum 0.9, weight decay 3e-5, grad
clip 5, cosine annealing) are the defaults, scaled down via the step
budget rather than the formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.loader import BatchLoader
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD, clip_grad_norm
from repro.nn.schedule import ConstantSchedule, CosineSchedule, Schedule
from repro.runstate.rng import generator_state, set_generator_state
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace
from repro.supernet.model import Supernet
from repro.train.metrics import top_k_accuracy
from repro.train.sampling import PathSampler, UniformSampler

CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class TrainConfig:
    """Supernet training hyper-parameters (paper Sec. IV-A defaults)."""

    base_lr: float = 0.5
    momentum: float = 0.9
    weight_decay: float = 3e-5
    grad_clip: float = 5.0
    label_smoothing: float = 0.1
    seed: int = 0


class SupernetTrainer:
    """Trains and evaluates a weight-sharing supernet."""

    def __init__(
        self,
        supernet: Supernet,
        loader: BatchLoader,
        config: Optional[TrainConfig] = None,
        sampler: Optional[PathSampler] = None,
    ):
        self.supernet = supernet
        self.loader = loader
        self.config = config if config is not None else TrainConfig()
        self.sampler: PathSampler = sampler if sampler is not None else UniformSampler()
        self.criterion = CrossEntropyLoss(self.config.label_smoothing)
        self.optimizer = SGD(
            supernet.parameters(),
            lr=self.config.base_lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self._rng = np.random.default_rng(self.config.seed)
        self.global_step = 0
        self.loss_history: List[float] = []

    # -- checkpointing -----------------------------------------------------------

    def _bn_modules(self):
        """Modules with running statistics, in stable discovery order."""
        return [
            m for m in self.supernet.modules() if hasattr(m, "running_mean")
        ]

    def state_dict(self) -> dict:
        """Everything a bit-exact training resume needs, JSON-ready.

        Weights and optimizer velocity go through ``.tolist()`` — JSON
        round-trips Python floats exactly, so a restored trainer
        produces the same update sequence to the last bit. (At proxy
        scale the arrays are small; full-scale runs would swap this for
        an ``npz`` written through :func:`repro.runstate.atomic_path`.)
        """
        return {
            "weights": {
                k: v.tolist() for k, v in self.supernet.state_dict().items()
            },
            "bn_running": [
                {"mean": m.running_mean.tolist(), "var": m.running_var.tolist()}
                for m in self._bn_modules()
            ],
            "velocity": [v.tolist() for v in self.optimizer._velocity],
            "optimizer_lr": self.optimizer.lr,
            "rng": generator_state(self._rng),
            "loader_rng": generator_state(self.loader._rng),
            "global_step": self.global_step,
            "loss_history": list(self.loss_history),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (weights, optimizer
        velocity, BN running stats, both rng streams, step counters)."""
        self.supernet.load_state_dict(
            {k: np.asarray(v) for k, v in state["weights"].items()}
        )
        bn = self._bn_modules()
        if len(bn) != len(state["bn_running"]):
            raise ValueError("BN module count mismatch in trainer state")
        for module, saved in zip(bn, state["bn_running"]):
            module.running_mean = np.asarray(saved["mean"])
            module.running_var = np.asarray(saved["var"])
        self.optimizer.load_state_dict(
            {
                "lr": float(state["optimizer_lr"]),
                "momentum": self.optimizer.momentum,
                "weight_decay": self.optimizer.weight_decay,
                "velocity": [np.asarray(v) for v in state["velocity"]],
            }
        )
        set_generator_state(self._rng, state["rng"])
        set_generator_state(self.loader._rng, state["loader_rng"])
        self.global_step = int(state["global_step"])
        self.loss_history = [float(x) for x in state["loss_history"]]

    # -- training ---------------------------------------------------------------

    def train_epochs(
        self,
        space: SearchSpace,
        epochs: int,
        schedule: Optional[Schedule] = None,
        checkpoint=None,
    ) -> List[float]:
        """Train for ``epochs`` over the loader, sampling paths from
        ``space``. Returns per-epoch mean losses.

        With a ``checkpoint`` (e.g.
        :class:`~repro.runstate.PhaseCheckpoint`), the full trainer
        state is saved after every epoch and a killed run resumes from
        the last completed epoch, bit-identical to an uninterrupted one.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if schedule is None:
            schedule = CosineSchedule(
                self.config.base_lr, total_steps=epochs * len(self.loader)
            )
        start_epoch = 0
        epoch_losses: List[float] = []
        if checkpoint is not None:
            saved = checkpoint.load()
            if saved is not None:
                if int(saved.get("format", 0)) != CHECKPOINT_FORMAT:
                    raise ValueError(
                        "unsupported trainer checkpoint format "
                        f"{saved.get('format')!r}"
                    )
                self.load_state_dict(saved["trainer"])
                epoch_losses = [float(x) for x in saved["epoch_losses"]]
                start_epoch = int(saved["completed_epochs"])
                if checkpoint.is_complete() or start_epoch >= epochs:
                    return epoch_losses
        self.supernet.train()
        step_in_run = start_epoch * len(self.loader)
        for epoch in range(start_epoch, epochs):
            losses = []
            for batch, labels in self.loader.epoch(augment=True):
                arch = self.sampler.next_path(space, self._rng)
                losses.append(self._step(arch, batch, labels,
                                         schedule.lr_at(step_in_run)))
                step_in_run += 1
            epoch_losses.append(float(np.mean(losses)))
            if checkpoint is not None:
                checkpoint.save(
                    {
                        "format": CHECKPOINT_FORMAT,
                        "completed_epochs": epoch + 1,
                        "epoch_losses": list(epoch_losses),
                        "trainer": self.state_dict(),
                    },
                    complete=(epoch + 1 == epochs),
                )
        return epoch_losses

    def tune_epochs(
        self,
        space: SearchSpace,
        epochs: int,
        lr: float,
        checkpoint=None,
    ) -> List[float]:
        """Post-shrinking tuning at a fixed small learning rate (the
        paper uses 0.01 after stage 1 and 0.0035 after stage 2)."""
        return self.train_epochs(
            space, epochs, schedule=ConstantSchedule(lr), checkpoint=checkpoint
        )

    def _step(
        self, arch: Architecture, batch: np.ndarray, labels: np.ndarray, lr: float
    ) -> float:
        self.supernet.set_architecture(arch)
        logits = self.supernet(batch)
        loss = self.criterion(logits, labels)
        self.optimizer.zero_grad()
        self.supernet.backward(self.criterion.backward())
        clip_grad_norm(self.supernet.parameters(), self.config.grad_clip)
        self.optimizer.lr = lr
        self.optimizer.step()
        self.global_step += 1
        self.loss_history.append(loss)
        return loss

    # -- weight-sharing evaluation -----------------------------------------------

    def evaluate_arch(
        self,
        arch: Architecture,
        images: np.ndarray,
        labels: np.ndarray,
        bn_batch_stats: bool = True,
        chunk_size: Optional[int] = None,
    ) -> float:
        """Top-1 accuracy of one subnet with inherited weights.

        ``bn_batch_stats=True`` (default) normalizes with the evaluation
        batch's own statistics — the standard one-shot-NAS batch-norm
        recalibration: running statistics accumulated across *different*
        paths do not describe any single subnet.

        ``chunk_size`` evaluates in chunks (bounding peak activation
        memory on large evaluation sets). With batch-stat BN, each chunk
        must be large enough for meaningful statistics (>= ~16 samples).
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.supernet.set_architecture(arch)
        if bn_batch_stats:
            self.supernet.train()
        else:
            self.supernet.eval()

        if chunk_size is None:
            logits = self.supernet(images)
        else:
            pieces = [
                self.supernet(images[start : start + chunk_size])
                for start in range(0, len(images), chunk_size)
            ]
            logits = np.concatenate(pieces, axis=0)
        self.supernet.train()
        return top_k_accuracy(logits, labels, k=1)

    def supernet_accuracy(
        self,
        space: SearchSpace,
        images: np.ndarray,
        labels: np.ndarray,
        num_archs: int = 8,
        seed: int = 0,
    ) -> float:
        """Mean weight-sharing accuracy over sampled subnets.

        This is the quantity the paper's Fig. 6 (left) tracks to show
        that shrink-then-tune beats naive training of the full space.
        """
        rng = np.random.default_rng(seed)
        accs = [
            self.evaluate_arch(space.sample(rng), images, labels)
            for _ in range(num_archs)
        ]
        return float(np.mean(accs))
