"""Single-path weight-sharing supernet training.

Each step samples one architecture uniformly from the (current, possibly
shrunk) search space, activates it in the supernet, and runs one SGD
step — the uniform-sampling one-shot recipe the paper builds on. The
paper's optimizer settings (SGD momentum 0.9, weight decay 3e-5, grad
clip 5, cosine annealing) are the defaults, scaled down via the step
budget rather than the formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.loader import BatchLoader
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD, clip_grad_norm
from repro.nn.schedule import ConstantSchedule, CosineSchedule, Schedule
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace
from repro.supernet.model import Supernet
from repro.train.metrics import top_k_accuracy
from repro.train.sampling import PathSampler, UniformSampler


@dataclass(frozen=True)
class TrainConfig:
    """Supernet training hyper-parameters (paper Sec. IV-A defaults)."""

    base_lr: float = 0.5
    momentum: float = 0.9
    weight_decay: float = 3e-5
    grad_clip: float = 5.0
    label_smoothing: float = 0.1
    seed: int = 0


class SupernetTrainer:
    """Trains and evaluates a weight-sharing supernet."""

    def __init__(
        self,
        supernet: Supernet,
        loader: BatchLoader,
        config: Optional[TrainConfig] = None,
        sampler: Optional[PathSampler] = None,
    ):
        self.supernet = supernet
        self.loader = loader
        self.config = config if config is not None else TrainConfig()
        self.sampler: PathSampler = sampler if sampler is not None else UniformSampler()
        self.criterion = CrossEntropyLoss(self.config.label_smoothing)
        self.optimizer = SGD(
            supernet.parameters(),
            lr=self.config.base_lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self._rng = np.random.default_rng(self.config.seed)
        self.global_step = 0
        self.loss_history: List[float] = []

    # -- training ---------------------------------------------------------------

    def train_epochs(
        self,
        space: SearchSpace,
        epochs: int,
        schedule: Optional[Schedule] = None,
    ) -> List[float]:
        """Train for ``epochs`` over the loader, sampling paths from
        ``space``. Returns per-epoch mean losses."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if schedule is None:
            schedule = CosineSchedule(
                self.config.base_lr, total_steps=epochs * len(self.loader)
            )
        self.supernet.train()
        epoch_losses: List[float] = []
        step_in_run = 0
        for _ in range(epochs):
            losses = []
            for batch, labels in self.loader.epoch(augment=True):
                arch = self.sampler.next_path(space, self._rng)
                losses.append(self._step(arch, batch, labels,
                                         schedule.lr_at(step_in_run)))
                step_in_run += 1
            epoch_losses.append(float(np.mean(losses)))
        return epoch_losses

    def tune_epochs(self, space: SearchSpace, epochs: int, lr: float) -> List[float]:
        """Post-shrinking tuning at a fixed small learning rate (the
        paper uses 0.01 after stage 1 and 0.0035 after stage 2)."""
        return self.train_epochs(space, epochs, schedule=ConstantSchedule(lr))

    def _step(
        self, arch: Architecture, batch: np.ndarray, labels: np.ndarray, lr: float
    ) -> float:
        self.supernet.set_architecture(arch)
        logits = self.supernet(batch)
        loss = self.criterion(logits, labels)
        self.optimizer.zero_grad()
        self.supernet.backward(self.criterion.backward())
        clip_grad_norm(self.supernet.parameters(), self.config.grad_clip)
        self.optimizer.lr = lr
        self.optimizer.step()
        self.global_step += 1
        self.loss_history.append(loss)
        return loss

    # -- weight-sharing evaluation -----------------------------------------------

    def evaluate_arch(
        self,
        arch: Architecture,
        images: np.ndarray,
        labels: np.ndarray,
        bn_batch_stats: bool = True,
        chunk_size: Optional[int] = None,
    ) -> float:
        """Top-1 accuracy of one subnet with inherited weights.

        ``bn_batch_stats=True`` (default) normalizes with the evaluation
        batch's own statistics — the standard one-shot-NAS batch-norm
        recalibration: running statistics accumulated across *different*
        paths do not describe any single subnet.

        ``chunk_size`` evaluates in chunks (bounding peak activation
        memory on large evaluation sets). With batch-stat BN, each chunk
        must be large enough for meaningful statistics (>= ~16 samples).
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.supernet.set_architecture(arch)
        if bn_batch_stats:
            self.supernet.train()
        else:
            self.supernet.eval()

        if chunk_size is None:
            logits = self.supernet(images)
        else:
            pieces = [
                self.supernet(images[start : start + chunk_size])
                for start in range(0, len(images), chunk_size)
            ]
            logits = np.concatenate(pieces, axis=0)
        self.supernet.train()
        return top_k_accuracy(logits, labels, k=1)

    def supernet_accuracy(
        self,
        space: SearchSpace,
        images: np.ndarray,
        labels: np.ndarray,
        num_archs: int = 8,
        seed: int = 0,
    ) -> float:
        """Mean weight-sharing accuracy over sampled subnets.

        This is the quantity the paper's Fig. 6 (left) tracks to show
        that shrink-then-tune beats naive training of the full space.
        """
        rng = np.random.default_rng(seed)
        accs = [
            self.evaluate_arch(space.sample(rng), images, labels)
            for _ in range(num_archs)
        ]
        return float(np.mean(accs))
