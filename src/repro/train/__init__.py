"""Training harnesses for the real-gradient path.

* :class:`~repro.train.supernet_trainer.SupernetTrainer` — single-path
  weight-sharing supernet training (the paper's 100-epoch phase and the
  15-epoch post-shrinking tuning phases).
* :class:`~repro.train.standalone.StandaloneTrainer` — train one fixed
  architecture from scratch (how HSCoNets are finally trained).
"""

from repro.train.metrics import top_k_accuracy
from repro.train.sampling import FairSampler, UniformSampler
from repro.train.supernet_trainer import SupernetTrainer, TrainConfig
from repro.train.standalone import StandaloneTrainer
from repro.train.bn_recalibration import recalibrate_bn

__all__ = [
    "top_k_accuracy",
    "UniformSampler",
    "FairSampler",
    "SupernetTrainer",
    "TrainConfig",
    "StandaloneTrainer",
    "recalibrate_bn",
]
