"""Batch-norm recalibration for weight-sharing evaluation.

A supernet's running BN statistics are accumulated across *different*
paths and describe no single subnet, so inference-mode evaluation of an
inherited subnet is systematically wrong. The standard remedy (used by
the one-shot NAS literature the paper builds on) is to re-estimate the
statistics for the chosen path by streaming a few training batches
through it before evaluation — implemented here.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import BatchLoader
from repro.nn.layers.norm import BatchNorm2d
from repro.space.architecture import Architecture
from repro.supernet.model import Supernet


def recalibrate_bn(
    supernet: Supernet,
    arch: Architecture,
    loader: BatchLoader,
    num_batches: int = 4,
    momentum: float = 0.5,
) -> int:
    """Re-estimate BN running statistics for one activated path.

    Resets every BN's running statistics, then streams ``num_batches``
    training batches (no augmentation, no gradient) through the
    activated path with a high-momentum update. Returns the number of
    batches actually used.

    The supernet is left in training mode with ``arch`` active;
    evaluation in ``eval()`` mode afterwards uses the recalibrated
    statistics.
    """
    if num_batches < 1:
        raise ValueError("num_batches must be >= 1")
    if not 0.0 < momentum <= 1.0:
        raise ValueError("momentum must be in (0, 1]")

    supernet.set_architecture(arch)
    supernet.train()
    originals = []
    for module in supernet.modules():
        if isinstance(module, BatchNorm2d):
            module.reset_running_stats()
            originals.append((module, module.momentum))
            module.momentum = momentum

    used = 0
    for batch, _ in loader.epoch(augment=False):
        supernet(batch)
        used += 1
        if used >= num_batches:
            break

    for module, saved in originals:
        module.momentum = saved
    return used


def eval_with_recalibrated_bn(
    supernet: Supernet,
    arch: Architecture,
    loader: BatchLoader,
    images: np.ndarray,
    labels: np.ndarray,
    num_batches: int = 4,
) -> float:
    """Convenience: recalibrate, then top-1 accuracy in eval mode."""
    from repro.train.metrics import top_k_accuracy

    recalibrate_bn(supernet, arch, loader, num_batches=num_batches)
    supernet.eval()
    logits = supernet(images)
    supernet.train()
    return top_k_accuracy(logits, labels, k=1)
