"""Accuracy models.

The paper evaluates candidate architectures with weight-sharing
(supernet-inherited) accuracy during search, and trains the discovered
HSCoNets from scratch on ImageNet for the final comparison. Training
1000-class ImageNet models is infeasible in a numpy-only environment, so
this package provides a **calibrated accuracy surrogate**: a saturating
capacity->error curve fit to published (FLOPs, top-1) anchor points of
searched mobile architectures, plus structural penalty terms (excessive
skips, width bottlenecks) and a deterministic per-architecture residual.

The surrogate is only used where the paper consumed a scalar ``ACC``;
the *mechanisms* (weight sharing, channel masking, progressive
shrinking) are additionally demonstrated with real numpy training on a
synthetic task via :mod:`repro.train`.

Note the paper itself quotes baseline accuracies from the literature —
only latencies were re-measured — and this reproduction does the same
(see :mod:`repro.baselines.zoo`).
"""

from repro.accuracy.features import ArchFeatures, extract_features
from repro.accuracy.calibration import (
    ACCURACY_ANCHORS,
    TOP5_PAIRS,
    CapacityCurve,
    fit_capacity_curve,
    fit_top5_mapping,
    frontier_curve,
)
from repro.accuracy.surrogate import AccuracySurrogate

__all__ = [
    "ArchFeatures",
    "extract_features",
    "ACCURACY_ANCHORS",
    "TOP5_PAIRS",
    "CapacityCurve",
    "fit_capacity_curve",
    "fit_top5_mapping",
    "frontier_curve",
    "AccuracySurrogate",
]
