"""The calibrated ImageNet-accuracy surrogate.

``top1_error(arch) = capacity_curve(FLOPs) + structural penalties +
deterministic residual``. The penalties encode well-established design
knowledge the EA must navigate:

* **excessive skips** collapse effective depth and hurt accuracy far
  beyond their FLOPs savings;
* a **width bottleneck** (one very narrow layer) throttles information
  flow through the whole network;
* **erratic width profiles** (large layer-to-layer factor variance)
  train worse than smooth ones;
* mild **kernel-diversity** benefit, as reported by multi-kernel NAS
  papers.

The residual is a zero-mean pseudo-random offset seeded by the
architecture digest — two evaluations of the same architecture always
agree, but near-identical architectures differ by a realistic scatter,
so the EA cannot exploit a perfectly smooth objective.

The surrogate also exposes the *weight-sharing proxy* accuracy used
during search: a noisier, systematically lower score whose ranking is
imperfectly correlated with the stand-alone score (as with real
supernets).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.accuracy.calibration import (
    CapacityCurve,
    Top5Mapping,
    fit_top5_mapping,
    frontier_curve,
)
from repro.accuracy.features import extract_features
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace  # noqa: F401 (docs reference)


def _digest_residual(arch: Architecture, salt: str, sigma: float) -> float:
    """Deterministic ~N(0, sigma) draw keyed by the architecture digest."""
    digest = hashlib.sha256((arch.digest() + salt).encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    return float(np.random.default_rng(seed).normal(0.0, sigma))


class AccuracySurrogate:
    """Maps architectures to (proxy and stand-alone) ImageNet accuracy.

    Parameters
    ----------
    space:
        The search space the architectures live in (provides FLOPs).
    curve:
        Capacity curve; defaults to the anchor fit.
    residual_sigma:
        Scatter (error points) of the per-architecture residual.
    proxy_gap:
        Systematic accuracy gap of weight-sharing evaluation vs.
        stand-alone training (error points; supernets score lower).
    proxy_sigma:
        Extra scatter of the weight-sharing proxy score.
    flops_scale:
        Multiplier applied to architecture FLOPs before entering the
        capacity curve. The curve is calibrated at ImageNet scale;
        scaled-down proxy spaces map onto it by relative capacity (see
        :meth:`for_space`).
    """

    # The A-layout space tops out near this capacity; proxy spaces are
    # mapped so *their* maximum architecture lands at the same point.
    _REFERENCE_MAX_FLOPS = 2.3e8

    def __init__(
        self,
        space: SearchSpace,
        curve: Optional[CapacityCurve] = None,
        top5_mapping: Optional[Top5Mapping] = None,
        residual_sigma: float = 0.15,
        proxy_gap: float = 8.0,
        proxy_sigma: float = 0.35,
        flops_scale: float = 1.0,
    ):
        self.space = space
        self.curve = curve if curve is not None else frontier_curve()
        self.top5_mapping = (
            top5_mapping if top5_mapping is not None else fit_top5_mapping()
        )
        if residual_sigma < 0 or proxy_sigma < 0:
            raise ValueError("sigmas must be non-negative")
        if flops_scale <= 0:
            raise ValueError("flops_scale must be positive")
        self.residual_sigma = residual_sigma
        self.proxy_gap = proxy_gap
        self.proxy_sigma = proxy_sigma
        self.flops_scale = flops_scale

    @classmethod
    def for_space(cls, space: SearchSpace, **kwargs) -> "AccuracySurrogate":
        """Surrogate with capacity auto-scaled to the space.

        ImageNet-scale spaces (>= 50M MACs at the top end) use absolute
        FLOPs; smaller proxy spaces are rescaled so their largest
        architecture matches the A-layout's capacity, keeping the
        error landscape (and hence the NAS dynamics) comparable.
        """
        probe = Architecture.uniform(space.num_layers, op_index=2, factor=1.0)
        max_flops = space.arch_flops(probe)
        scale = 1.0 if max_flops >= 5e7 else cls._REFERENCE_MAX_FLOPS / max_flops
        return cls(space, flops_scale=scale, **kwargs)

    # -- structural penalties -------------------------------------------------

    def _penalties(self, arch: Architecture) -> float:
        feats = extract_features(self.space, arch)
        penalty = 0.0
        # Excessive skip connections: a couple of skips are harmless
        # (residual-like shortcuts), but beyond ~L/8 each one removes a
        # transformation stage and costs real accuracy.
        free_skips = feats.num_layers // 8
        num_skips = feats.num_layers - feats.depth
        if num_skips > free_skips:
            penalty += 0.45 * (num_skips - free_skips) ** 1.3
        # Width bottleneck below factor 0.3.
        if feats.min_factor < 0.3:
            penalty += 8.0 * (0.3 - feats.min_factor)
        # Erratic width profile.
        penalty += 1.2 * feats.std_factor
        # Kernel diversity bonus (small).
        if feats.num_distinct_ops >= 3:
            penalty -= 0.15
        return penalty

    # -- stand-alone (train-from-scratch) accuracy ------------------------------

    def top1_error(self, arch: Architecture) -> float:
        """Stand-alone top-1 error (%) after full training."""
        flops = self.space.arch_flops(arch) * self.flops_scale
        error = self.curve.error_at(flops)
        error += self._penalties(arch)
        error += _digest_residual(arch, salt="standalone", sigma=self.residual_sigma)
        return float(np.clip(error, 5.0, 95.0))

    def top5_error(self, arch: Architecture) -> float:
        """Stand-alone top-5 error (%), via the fitted top-1 mapping."""
        return round(self.top5_mapping.top5_of(self.top1_error(arch)), 1)

    def accuracy(self, arch: Architecture) -> float:
        """Stand-alone top-1 accuracy as a fraction in [0, 1].

        This is the ``ACC(arch)`` consumed by the paper's objective
        (Eq. 1).
        """
        return (100.0 - self.top1_error(arch)) / 100.0

    # -- weight-sharing proxy accuracy -----------------------------------------

    def proxy_accuracy(self, arch: Architecture) -> float:
        """Supernet-inherited (weight-sharing) top-1 accuracy fraction.

        Systematically below stand-alone accuracy and noisier, but
        rank-correlated with it — the regime in which one-shot NAS
        actually operates.
        """
        error = self.top1_error(arch) + self.proxy_gap
        error += _digest_residual(arch, salt="proxy", sigma=self.proxy_sigma)
        return float(np.clip((100.0 - error) / 100.0, 0.0, 1.0))
