"""Structural features of an architecture, consumed by the surrogate."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.space.architecture import Architecture
from repro.space.operators import get_operator
from repro.space.search_space import SearchSpace


@dataclass(frozen=True)
class ArchFeatures:
    """Capacity and shape descriptors of one architecture.

    Attributes
    ----------
    flops:
        Total MACs (stem + searchable layers + head).
    params:
        Total weight count.
    depth:
        Number of non-skip layers.
    num_layers:
        Searchable layer count ``L``.
    mean_factor, std_factor, min_factor:
        Channel scaling profile statistics.
    num_distinct_ops:
        Operator diversity (distinct non-skip operator kinds used).
    mean_kernel:
        Average kernel size over non-skip layers (0 if all skip).
    """

    flops: float
    params: float
    depth: int
    num_layers: int
    mean_factor: float
    std_factor: float
    min_factor: float
    num_distinct_ops: int
    mean_kernel: float


def extract_features(space: SearchSpace, arch: Architecture) -> ArchFeatures:
    """Compute :class:`ArchFeatures` for ``arch`` within ``space``."""
    factors = np.asarray(arch.factors, dtype=np.float64)
    non_skip = [get_operator(i) for i in arch.ops if not get_operator(i).is_skip]
    kernels = [op.kernel_size for op in non_skip]
    return ArchFeatures(
        flops=space.arch_flops(arch),
        params=space.arch_params(arch),
        depth=len(non_skip),
        num_layers=arch.num_layers,
        mean_factor=float(factors.mean()),
        std_factor=float(factors.std()),
        min_factor=float(factors.min()),
        num_distinct_ops=len({op.name for op in non_skip}),
        mean_kernel=float(np.mean(kernels)) if kernels else 0.0,
    )
