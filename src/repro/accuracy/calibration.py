"""Calibration data and fits for the accuracy surrogate.

``ACCURACY_ANCHORS`` lists published (FLOPs, top-1 error) pairs of
*searched* mobile architectures — the quality level HSCoNAS's
ShuffleNetV2-block space is known to reach. The capacity curve is a
three-parameter saturating power law fit to these anchors with scipy;
the top-1 -> top-5 mapping is a least-squares line through the paired
error rates reported in the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import optimize

# (name, MACs, published top-1 error %) — searched mobile models.
ACCURACY_ANCHORS: Tuple[Tuple[str, float, float], ...] = (
    ("MobileNetV3-Large", 219e6, 24.8),
    ("FBNet-A", 249e6, 27.0),
    ("FBNet-B", 295e6, 25.9),
    ("MnasNet-A1", 312e6, 24.8),
    ("ProxylessNAS-Mobile", 320e6, 25.4),
    ("FBNet-C", 375e6, 25.1),
    ("ProxylessNAS-GPU", 465e6, 24.9),
    ("DARTS", 574e6, 26.7),
    ("ShuffleNetV2-2x", 591e6, 25.1),
)

# Paired (top-1, top-5) error rates from the paper's Table I.
TOP5_PAIRS: Tuple[Tuple[float, float], ...] = (
    (26.7, 8.7),
    (24.8, 7.5),
    (27.0, 9.1),
    (25.9, 8.2),
    (25.1, 7.7),
    (24.9, 7.5),
    (25.4, 7.8),
)


@dataclass(frozen=True)
class CapacityCurve:
    """``err(C) = floor + scale * (C / 3e8) ** (-gamma)`` in error points."""

    floor: float
    scale: float
    gamma: float
    ref_flops: float = 3e8

    def error_at(self, flops: float) -> float:
        if flops <= 0:
            raise ValueError("flops must be positive")
        return self.floor + self.scale * (flops / self.ref_flops) ** (-self.gamma)


def frontier_curve() -> CapacityCurve:
    """The default capacity curve used by the surrogate.

    Calibrated on the *searched frontier*: it passes through
    MobileNetV3-Large (219M MACs, 24.8% top-1 error) — the best
    published searched model in the paper's comparison — and matches the
    within-family scaling slope of MobileNetV2 (0.75x/1.0x/1.4x). Models
    from well-run NAS in an efficient block space (which HSCoNAS's
    ShuffleNetV2 space is) sit on this curve; older or hardware-agnostic
    designs sit above it by their structural penalties.
    """
    return CapacityCurve(floor=20.0, scale=4.0, gamma=0.52)


def fit_capacity_curve(
    anchors: Sequence[Tuple[str, float, float]] = ACCURACY_ANCHORS,
) -> CapacityCurve:
    """Least-squares fit of the saturating capacity curve to the anchors.

    The fit is deliberately loose (the anchors scatter by ~1 point at
    equal FLOPs — that scatter is architecture quality, which the
    surrogate models separately), but it pins the level and slope of the
    capacity/accuracy trade-off that the EA exploits.
    """
    flops = np.array([a[1] for a in anchors])
    errors = np.array([a[2] for a in anchors])

    def residual(params: np.ndarray) -> np.ndarray:
        floor, scale, gamma = params
        pred = floor + scale * (flops / 3e8) ** (-gamma)
        return pred - errors

    result = optimize.least_squares(
        residual,
        x0=np.array([20.0, 4.0, 0.5]),
        bounds=(np.array([0.0, 0.0, 0.01]), np.array([26.0, 30.0, 1.5])),
    )
    floor, scale, gamma = result.x
    return CapacityCurve(float(floor), float(scale), float(gamma))


@dataclass(frozen=True)
class Top5Mapping:
    """Linear top-1 -> top-5 error mapping fit to the paper's pairs."""

    slope: float
    intercept: float

    def top5_of(self, top1: float) -> float:
        return max(0.1, self.slope * top1 + self.intercept)


def fit_top5_mapping(
    pairs: Sequence[Tuple[float, float]] = TOP5_PAIRS,
) -> Top5Mapping:
    """Least-squares line through the (top-1, top-5) error pairs."""
    top1 = np.array([p[0] for p in pairs])
    top5 = np.array([p[1] for p in pairs])
    slope, intercept = np.polyfit(top1, top5, deg=1)
    return Top5Mapping(float(slope), float(intercept))
