"""Variance-band reporting for tabular scenario sweeps (Fig. 6 bands).

Pure data-in, data-out helpers over plain lists/dicts so the report
layer stays import-light: :mod:`repro.tabular.sweep` produces the
scenario payloads, this module turns them into generation-wise bands
(mean/std/min/max across seeds), aggregate summary rows, and rendered
text — the multi-seed counterpart of the paper's single-seed Fig. 6
curves and Table I rows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def generation_bands(
    curves: Sequence[Sequence[float]],
) -> Dict[str, List[float]]:
    """Generation-wise mean/std/min/max across same-length curves."""
    if not curves:
        raise ValueError("at least one curve is required")
    lengths = {len(curve) for curve in curves}
    if len(lengths) != 1:
        raise ValueError(
            f"curves must share a generation count, got lengths {sorted(lengths)}"
        )
    stacked = np.asarray(curves, dtype=np.float64)
    return {
        "generation": list(range(stacked.shape[1])),
        "mean": [float(v) for v in stacked.mean(axis=0)],
        "std": [float(v) for v in stacked.std(axis=0)],
        "min": [float(v) for v in stacked.min(axis=0)],
        "max": [float(v) for v in stacked.max(axis=0)],
    }


def summarize_group(label: str, scenarios: Sequence[dict]) -> dict:
    """One aggregate row for a (device, target) group of scenarios.

    ``scenarios`` are :meth:`ScenarioResult.to_dict` payloads sharing a
    device and target; the row reports cross-seed spread of the final
    best plus the oracle gap where the table knows the true optimum.
    """
    if not scenarios:
        raise ValueError("at least one scenario is required")
    accuracy = np.asarray(
        [s["best_accuracy"] for s in scenarios], dtype=np.float64
    )
    latency = np.asarray(
        [s["best_latency_ms"] for s in scenarios], dtype=np.float64
    )
    row = {
        "group": label,
        "device": scenarios[0]["device"],
        "target_ms": float(scenarios[0]["target_ms"]),
        "seeds": len(scenarios),
        "best_accuracy_mean": float(accuracy.mean()),
        "best_accuracy_std": float(accuracy.std()),
        "best_latency_ms_mean": float(latency.mean()),
        "best_latency_ms_std": float(latency.std()),
        "evaluations_total": int(
            sum(s["num_evaluations"] for s in scenarios)
        ),
    }
    oracles = [
        s["oracle_accuracy"]
        for s in scenarios
        if s.get("oracle_accuracy") is not None
    ]
    if oracles:
        # The oracle is a property of (device, target), identical for
        # every seed in the group.
        row["oracle_accuracy"] = float(oracles[0])
        row["oracle_gap_mean"] = float(oracles[0] - accuracy.mean())
    return row


def render_sweep_summary(rows: Sequence[dict]) -> str:
    """Fixed-width text rendering of :func:`summarize_group` rows."""
    header = (
        f"{'scenario':<18s} {'seeds':>5s} {'acc mean':>9s} "
        f"{'acc std':>8s} {'lat mean':>9s} {'oracle gap':>10s}"
    )
    lines = [header]
    for row in rows:
        gap = row.get("oracle_gap_mean")
        lines.append(
            f"{row['group']:<18s} {row['seeds']:>5d} "
            f"{row['best_accuracy_mean']:>9.4f} "
            f"{row['best_accuracy_std']:>8.4f} "
            f"{row['best_latency_ms_mean']:>9.2f} "
            + (f"{gap:>10.4f}" if gap is not None else f"{'n/a':>10s}")
        )
    return "\n".join(lines)
