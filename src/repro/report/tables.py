"""Table I renderer: the state-of-the-art comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class TableRow:
    """One row of Table I."""

    name: str
    group: str  # "manual" / "nas" / "hsconas"
    top1_error: float
    top5_error: Optional[float]
    latency_gpu_ms: float
    latency_cpu_ms: float
    latency_edge_ms: float


_GROUP_HEADERS = {
    "manual": "Manually-Designed Models",
    "nas": "State-of-the-art NAS Models",
    "hsconas": "Hardware-Aware Models Discovered by HSCoNAS",
}


def render_table1(rows: Sequence[TableRow]) -> str:
    """Render rows in the paper's Table-I layout (fixed-width text)."""
    if not rows:
        raise ValueError("no rows to render")
    lines: List[str] = []
    header = (
        f"{'Model':34s} {'Top-1':>6s} {'Top-5':>6s} "
        f"{'GPU(ms)':>8s} {'CPU(ms)':>8s} {'Edge(ms)':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    current_group = None
    for row in rows:
        if row.group != current_group:
            current_group = row.group
            lines.append(f"-- {_GROUP_HEADERS.get(row.group, row.group)} --")
        top5 = f"{row.top5_error:6.1f}" if row.top5_error is not None else "     -"
        lines.append(
            f"{row.name:34s} {row.top1_error:6.1f} {top5} "
            f"{row.latency_gpu_ms:8.1f} {row.latency_cpu_ms:8.1f} "
            f"{row.latency_edge_ms:9.1f}"
        )
    return "\n".join(lines)


def render_markdown(rows: Sequence[TableRow]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        raise ValueError("no rows to render")
    lines = [
        "| Model | Top-1 (%) | Top-5 (%) | GPU (ms) | CPU (ms) | Edge (ms) |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        top5 = f"{row.top5_error:.1f}" if row.top5_error is not None else "-"
        lines.append(
            f"| {row.name} | {row.top1_error:.1f} | {top5} "
            f"| {row.latency_gpu_ms:.1f} | {row.latency_cpu_ms:.1f} "
            f"| {row.latency_edge_ms:.1f} |"
        )
    return "\n".join(lines)
