"""Figure data series: CSV export and terminal histograms.

The benchmarks regenerate each figure as a data series (the thing a
plot would show); these helpers render them without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def series_to_csv(series: Dict[str, Sequence[float]]) -> str:
    """Column-wise CSV of equal-length named series."""
    if not series:
        raise ValueError("no series to export")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    names = list(series)
    lines = [",".join(names)]
    for i in range(lengths.pop()):
        lines.append(",".join(f"{series[name][i]:.6g}" for name in names))
    return "\n".join(lines)


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 56,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Terminal scatter plot (used for the Fig. 2 / Fig. 3 panels)."""
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size == 0:
        raise ValueError("x and y must be equal-length non-empty sequences")
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4 characters")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(xs, ys):
        col = min(width - 1, int((xv - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((yv - y_lo) / y_span * (height - 1)))
        row = height - 1 - row  # origin bottom-left
        cell = grid[row][col]
        grid[row][col] = "*" if cell == " " else "#"

    lines = [f"{y_label} ({y_lo:.3g} .. {y_hi:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_lo:.3g} .. {x_hi:.3g})")
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    label: str = "",
) -> str:
    """Terminal histogram (used for the paper's Fig. 6 bottom panel)."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise ValueError("no values to histogram")
    counts, edges = np.histogram(data, bins=bins)
    peak = max(int(counts.max()), 1)
    lines: List[str] = []
    if label:
        lines.append(label)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{lo:8.2f}-{hi:8.2f} | {bar} {count}")
    return "\n".join(lines)
