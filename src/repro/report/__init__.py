"""Rendering of the paper's tables and figure data series."""

from repro.report.tables import TableRow, render_table1
from repro.report.figures import ascii_histogram, ascii_scatter, series_to_csv
from repro.report.sweeps import (
    generation_bands,
    render_sweep_summary,
    summarize_group,
)

__all__ = [
    "TableRow",
    "render_table1",
    "ascii_histogram",
    "ascii_scatter",
    "series_to_csv",
    "generation_bands",
    "render_sweep_summary",
    "summarize_group",
]
