"""Fig. 3 — effectiveness of the hardware performance model (Eq. 2-3).

For each device, a per-operator latency LUT is micro-benchmarked, the
bias ``B`` is calibrated on M sampled architectures, and the predictor
is evaluated on a held-out set against fresh on-device measurements.

Paper numbers: RMSE 0.1 ms (CPU), 0.5 ms (GPU), 1.7 ms (edge), with
strong predicted-vs-measured correlation after incorporating B. The
shape criteria: bias correction slashes the RMSE, correlation r > 0.95,
and the RMSE ordering CPU < GPU < edge holds.
"""

import numpy as np

from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler

_PAPER_RMSE = {"cpu": 0.1, "gpu": 0.5, "edge": 1.7}
_EVAL_ARCHS = 60


def _fit_and_evaluate(space, device):
    lut = LatencyLUT.build(space, device, samples_per_cell=3, seed=0)
    profiler = OnDeviceProfiler(device, seed=1)

    raw = LatencyPredictor(lut, space)
    calibrated = LatencyPredictor(lut, space)
    calibrated.calibrate_bias(space, profiler, num_archs=40, seed=2)

    eval_rng = np.random.default_rng(33)
    holdout = [space.sample(eval_rng) for _ in range(_EVAL_ARCHS)]
    return (
        raw.evaluate(space, profiler, holdout),
        calibrated.evaluate(space, profiler, holdout),
        calibrated.bias_ms,
    )


def test_fig3_latency_predictor(benchmark, space_a, devices):
    def experiment():
        return {
            key: _fit_and_evaluate(space_a, devices[key])
            for key in ("cpu", "gpu", "edge")
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Fig. 3: predicted vs on-device latency (per device) ===")
    print(f"{'device':>6s} {'B (ms)':>8s} {'RMSE w/o B':>11s} {'RMSE w/ B':>10s} "
          f"{'paper RMSE':>10s} {'r':>7s} {'rho':>7s}")
    for key in ("cpu", "gpu", "edge"):
        raw, fixed, bias = results[key]
        print(
            f"{key:>6s} {bias:8.2f} {raw.rmse_ms:11.3f} {fixed.rmse_ms:10.3f} "
            f"{_PAPER_RMSE[key]:10.1f} {fixed.pearson_r:7.4f} "
            f"{fixed.spearman_rho:7.4f}"
        )

    # Shape criteria.
    for key in ("cpu", "gpu", "edge"):
        raw, fixed, bias = results[key]
        assert bias > 0.0, f"{key}: B must be positive (missing overheads)"
        assert fixed.rmse_ms < raw.rmse_ms * 0.6, f"{key}: B must slash RMSE"
        assert fixed.pearson_r > 0.9, f"{key}: correlation too weak"
        # Within ~4x of the paper's absolute RMSE (different noise floor).
        assert fixed.rmse_ms < _PAPER_RMSE[key] * 4.0, key

    # RMSE ordering matches the paper: CPU < GPU < edge.
    rmse = {k: results[k][1].rmse_ms for k in results}
    assert rmse["cpu"] < rmse["gpu"] < rmse["edge"]
