"""Fig. 2 — FLOPs / Params are hardware-agnostic: same count, very
different latency.

Reproduces the paper's scatter by sampling architectures, timing them on
the GPU device model, and reporting (a) the correlation between the
hardware-agnostic metrics and latency, and (b) the latency spread inside
narrow FLOPs/Params buckets. The paper's claim holds if the within-bucket
spread is large (same FLOPs, >=1.5x latency differences).
"""

import numpy as np

from repro.analysis import bucket_spread
from repro.hardware.metrics import pearson, spearman
from repro.report.figures import ascii_scatter, series_to_csv

_NUM_ARCHS = 250


def test_fig2_flops_vs_latency(benchmark, space_a, devices):
    def experiment():
        rng = np.random.default_rng(42)
        archs = [space_a.sample(rng) for _ in range(_NUM_ARCHS)]
        flops = [space_a.arch_flops(a) / 1e6 for a in archs]
        params = [space_a.arch_params(a) / 1e6 for a in archs]
        latency = [devices["gpu"].latency_ms(space_a, a) for a in archs]
        return flops, params, latency

    flops, params, latency = benchmark.pedantic(experiment, rounds=1, iterations=1)
    r_flops = pearson(flops, latency)
    rho_flops = spearman(flops, latency)

    flops_buckets = bucket_spread(flops, latency, num_buckets=8)
    params_buckets = bucket_spread(params, latency, num_buckets=8)

    print("\n=== Fig. 2: latency vs FLOPs (left) and Params (right), GPU ===")
    print(f"architectures sampled: {len(flops)}")
    print(f"FLOPs->latency  pearson r = {r_flops:.3f}  spearman = {rho_flops:.3f}")
    print(f"Params->latency pearson r = {pearson(params, latency):.3f}")
    print("\nwithin-FLOPs-bucket latency spread (max/min):")
    for s in flops_buckets:
        print(
            f"  {s.metric_low:6.1f}-{s.metric_high:6.1f} MMACs  "
            f"n={s.count:3d}  lat {s.latency_min:5.2f}-{s.latency_max:5.2f} ms  "
            f"spread x{s.spread_ratio:.2f}"
        )
    print("\nwithin-Params-bucket latency spread (max/min):")
    for s in params_buckets:
        print(
            f"  {s.metric_low:6.2f}-{s.metric_high:6.2f} MParams "
            f"n={s.count:3d}  lat {s.latency_min:5.2f}-{s.latency_max:5.2f} ms  "
            f"spread x{s.spread_ratio:.2f}"
        )
    print("\nscatter (Fig. 2 left):")
    print(ascii_scatter(flops, latency, x_label="MMACs", y_label="latency ms"))
    print("\nCSV (first rows):")
    csv = series_to_csv(
        {"flops_m": flops, "params_m": params, "latency_ms": latency}
    )
    print("\n".join(csv.splitlines()[:6]) + "\n...")

    # Shape criteria: wide spread at fixed FLOPs, so the hardware-
    # agnostic metric is inadequate — the paper's conclusion. (The
    # single-family ShuffleNetV2 space bounds how different two
    # same-FLOPs architectures can be; a ~1.25x within-bucket spread on
    # a 20% FLOPs bucket is the Fig. 2 effect at this space's scale.)
    max_spread = max(s.spread_ratio for s in flops_buckets)
    assert max_spread >= 1.25
    median_spread = float(np.median([s.spread_ratio for s in flops_buckets]))
    assert median_spread >= 1.15
    # Correlation exists but is far from rank-perfect.
    assert rho_flops < 0.92
