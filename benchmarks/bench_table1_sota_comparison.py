"""Table I — comparison with state-of-the-art approaches.

Regenerates the paper's headline table:

* 11 published baselines (3 manual, 8 NAS), with error rates quoted from
  the literature (the paper's own methodology) and latencies measured on
  the three *simulated* devices, anchor-calibrated to the paper's
  testbed scale;
* 6 HSCoNets — one full HSCoNAS pipeline run per (device, channel
  layout) pair: A-series at the paper's 9 / 24 / 34 ms constraints and
  B-series at the looser constraints the published B-row latencies
  imply (12 / 26.5 / 53 ms).

Absolute numbers come from a simulator; the assertions check the
*shape*: who wins, roughly by what factor, and that every HSCoNet meets
its constraint on its target device.
"""


from repro.baselines import all_baselines
from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware import OnDeviceProfiler
from repro.report import TableRow, render_table1

from conftest import TARGETS_A, TARGETS_B

_DEVICE_KEYS = ("gpu", "cpu", "edge")


def _measure_on_all(space, arch, devices):
    """Median measured latency of one architecture on every device."""
    out = {}
    for key in _DEVICE_KEYS:
        profiler = OnDeviceProfiler(devices[key], seed=11)
        out[key] = profiler.measure_ms(space, arch)
    return out


def _run_series(tag, space, surrogate, targets, devices, seed):
    """One HSCoNAS run per device; returns TableRows + metadata."""
    rows = []
    meta = {}
    for key in _DEVICE_KEYS:
        config = HSCoNASConfig(
            target_ms=targets[key],
            evolution=EvolutionConfig(seed=seed),
            seed=seed,
        )
        result = HSCoNAS(space, devices[key], config, surrogate=surrogate).run()
        lats = _measure_on_all(space, result.arch, devices)
        name = f"HSCoNet-{key.upper()}-{tag}"
        rows.append(
            TableRow(
                name=name,
                group="hsconas",
                top1_error=round(result.top1_error, 1),
                top5_error=result.top5_error,
                latency_gpu_ms=lats["gpu"],
                latency_cpu_ms=lats["cpu"],
                latency_edge_ms=lats["edge"],
            )
        )
        meta[name] = {"target": targets[key], "device": key, "lats": lats}
    return rows, meta


def test_table1_sota_comparison(benchmark, space_a, space_b, surrogate_a,
                                surrogate_b, devices):
    def experiment():
        rows = []
        for model in all_baselines():
            net = model.build()
            lat = {
                key: devices[key].run_network_ms(net.layers)
                for key in _DEVICE_KEYS
            }
            rows.append(
                TableRow(
                    name=model.name,
                    group=model.group,
                    top1_error=model.published.top1_error,
                    top5_error=model.published.top5_error,
                    latency_gpu_ms=lat["gpu"],
                    latency_cpu_ms=lat["cpu"],
                    latency_edge_ms=lat["edge"],
                )
            )
        rows_a, meta_a = _run_series(
            "A", space_a, surrogate_a, TARGETS_A, devices, seed=0
        )
        rows_b, meta_b = _run_series(
            "B", space_b, surrogate_b, TARGETS_B, devices, seed=1
        )
        return rows + rows_a + rows_b, {**meta_a, **meta_b}

    rows, meta = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Table I: comparison with state-of-the-art approaches ===")
    print("(baseline errors: published values, as in the paper; latencies:")
    print(" simulated devices, anchor-calibrated to the paper's testbed)\n")
    print(render_table1(rows))
    print(
        "\nconstraints: A-series "
        f"{TARGETS_A['gpu']}/{TARGETS_A['cpu']}/{TARGETS_A['edge']} ms; "
        f"B-series {TARGETS_B['gpu']}/{TARGETS_B['cpu']}/{TARGETS_B['edge']} ms"
    )

    by_name = {r.name: r for r in rows}

    def lat(name, key):
        return getattr(by_name[name], f"latency_{key}_ms")

    # --- shape criteria ---------------------------------------------------

    # Every HSCoNet meets its latency constraint on its target device
    # (within 10%; the paper's own Edge-A lands at 34.9 vs T=34).
    for name, info in meta.items():
        measured = info["lats"][info["device"]]
        assert measured <= info["target"] * 1.10, (name, measured)

    # Specialization wins (Table I's diagonal pattern): on device X at
    # its constraint, the X-searched net reaches the lowest error among
    # the series members that also meet that constraint.
    targets = {"A": TARGETS_A, "B": TARGETS_B}
    for tag in ("A", "B"):
        for key in _DEVICE_KEYS:
            budget = targets[tag][key] * 1.10
            own = by_name[f"HSCoNet-{key.upper()}-{tag}"]
            assert getattr(own, f"latency_{key}_ms") <= budget, (tag, key)
            for other in _DEVICE_KEYS:
                if other == key:
                    continue
                rival = by_name[f"HSCoNet-{other.upper()}-{tag}"]
                if getattr(rival, f"latency_{key}_ms") <= budget:
                    # 0.5-pt tolerance: the surrogate's per-arch residual
                    # plus EA seed variance — the same scale on which the
                    # paper's own A-series rows differ (25.1 vs 25.7).
                    assert own.top1_error <= rival.top1_error + 0.5, (
                        tag, key, other
                    )

    # HSCoNet-GPU-A is decisively faster on GPU than ProxylessNAS-GPU at
    # comparable accuracy (paper: x1.3 with equal error).
    assert lat("HSCoNet-GPU-A", "gpu") < lat("ProxylessNAS-GPU", "gpu") / 1.15
    assert by_name["HSCoNet-GPU-A"].top1_error <= 26.5

    # The B-series reaches lower error than the A-series (bigger layout).
    mean_a = sum(by_name[f"HSCoNet-{k.upper()}-A"].top1_error
                 for k in _DEVICE_KEYS) / 3
    mean_b = sum(by_name[f"HSCoNet-{k.upper()}-B"].top1_error
                 for k in _DEVICE_KEYS) / 3
    assert mean_b < mean_a

    # HSCoNet-CPU-B: among the most accurate models while being a large
    # factor faster than DARTS on CPU (paper: lowest error, x3.1 faster).
    cpu_b = by_name["HSCoNet-CPU-B"]
    best_published = min(
        r.top1_error for r in rows if r.group in ("manual", "nas")
    )
    assert cpu_b.top1_error <= best_published + 0.8
    assert lat("DARTS", "cpu") / cpu_b.latency_cpu_ms > 1.8

    # HSCoNets beat the manual designs on their target device at equal
    # or better accuracy (Table I's first conclusion).
    assert lat("HSCoNet-GPU-A", "gpu") < lat("MobileNetV2 1.0x", "gpu")
    assert lat("HSCoNet-EDGE-A", "edge") < lat("MobileNetV2 1.0x", "edge")
    assert lat("HSCoNet-CPU-A", "cpu") < lat("MobileNetV2 1.0x", "cpu")
