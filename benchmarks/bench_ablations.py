"""Ablations of HSCoNAS's design choices (DESIGN.md's ablation index).

Three paired comparisons on the edge device:

1. **Bias B on/off** — predicting with the raw op-sum systematically
   underestimates latency, so a search trusting it violates the real
   constraint (the reason Eq. 3 exists).
2. **EA vs random search** — at an equal evaluation budget the EA finds
   a better Eq. 1 score (the paper's Sec. III-D argument for EA).
3. **Dynamic channels on/off** — searching operators *and* factors
   beats operators-only search at the same latency budget (the Sec.
   III-B argument, complementing Fig. 4's post-hoc-scaling comparison).
"""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    Objective,
    ReinforceConfig,
    ReinforceSearch,
)
from repro.core.evolution import RandomSearch
from repro.hardware import (
    FeatureLatencyPredictor,
    FlopsLatencyPredictor,
    LatencyLUT,
    LatencyPredictor,
    OnDeviceProfiler,
)
from repro.space import SearchSpace

_TARGET_MS = 34.0


@pytest.fixture(scope="module")
def edge_setup(space_a, devices):
    device = devices["edge"]
    lut = LatencyLUT.build(space_a, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space_a)
    profiler = OnDeviceProfiler(device, seed=0)
    predictor.calibrate_bias(space_a, profiler, num_archs=30, seed=1)
    return predictor, profiler


def _objective(surrogate, latency_fn):
    return Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=latency_fn,
        target_ms=_TARGET_MS,
        beta=-0.5,
    )


def test_ablation_bias_term(benchmark, space_a, surrogate_a, edge_setup):
    """Search with vs without B: the uncorrected predictor's winner
    busts the real latency constraint."""
    predictor, profiler = edge_setup

    def experiment():
        results = {}
        for label, latency_fn in (
            ("with B", predictor.predict),
            ("without B", lambda a: predictor.predict(a) - predictor.bias_ms),
        ):
            search = EvolutionarySearch(
                space_a,
                _objective(surrogate_a, latency_fn),
                EvolutionConfig(generations=10, population_size=30,
                                num_parents=10, seed=4),
            )
            best = search.run().best
            measured = profiler.measure_ms(space_a, best.arch)
            results[label] = measured
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\n=== Ablation: bias term B (edge, T={_TARGET_MS} ms) ===")
    for label, measured in results.items():
        print(f"  search {label:10s}: measured latency {measured:5.1f} ms")

    assert results["with B"] <= _TARGET_MS * 1.08
    # Without B the predictor under-reports by ~B, so the EA converges
    # to architectures that actually exceed the constraint.
    assert results["without B"] > _TARGET_MS * 1.08
    assert results["without B"] > results["with B"]


def test_ablation_ea_vs_random(benchmark, space_a, surrogate_a, edge_setup):
    """EA vs uniform random search at an equal evaluation budget."""
    predictor, _ = edge_setup
    objective = _objective(surrogate_a, predictor.predict)

    def experiment():
        ea = EvolutionarySearch(
            space_a, objective,
            EvolutionConfig(generations=12, population_size=25,
                            num_parents=10, seed=5),
        ).run()
        budget = sum(len(g.population) for g in ea.generations)
        random_bests = [
            RandomSearch(space_a, objective, budget=budget, seed=s).run().best.score
            for s in range(3)
        ]
        return ea.best.score, random_bests, budget

    ea_score, random_bests, budget = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    print(f"\n=== Ablation: EA vs random search ({budget} evaluations) ===")
    print(f"  EA best score:     {ea_score:.4f}")
    print(f"  random best score: {max(random_bests):.4f} "
          f"(best of 3 seeds; all: {[round(s, 4) for s in random_bests]})")

    assert ea_score > max(random_bests)


def test_ablation_dynamic_channels(benchmark, space_a, surrogate_a, edge_setup):
    """Operators+factors search vs operators-only (factors pinned at 1.0).

    The comparison runs at a *tight* latency target: with full-width
    layers the only way to get fast is dropping whole layers (skips),
    which costs far more accuracy than trimming channels — precisely the
    regime the paper's dynamic channel scaling is for.
    """
    predictor, _ = edge_setup
    tight_target = 24.0  # well below what full-width op choices reach
    objective = Objective(
        accuracy_fn=surrogate_a.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=tight_target,
        beta=-0.5,
    )

    def experiment():
        cfg = EvolutionConfig(generations=12, population_size=30,
                              num_parents=10, seed=6)
        full = EvolutionarySearch(space_a, objective, cfg).run().best

        ops_only_space = SearchSpace(
            space_a.config,
            candidate_factors=[[1.0]] * space_a.num_layers,
        )
        ops_only = EvolutionarySearch(ops_only_space, objective, cfg).run().best
        return full, ops_only

    full, ops_only = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\n=== Ablation: dynamic channel scaling (edge, T={tight_target} ms) ===")
    print(f"  ops+factors: score {full.score:.4f}  "
          f"lat {full.latency_ms:5.1f} ms  acc {full.accuracy:.4f}")
    print(f"  ops only:    score {ops_only.score:.4f}  "
          f"lat {ops_only.latency_ms:5.1f} ms  acc {ops_only.accuracy:.4f}")

    # Channel-level exploration finds a better trade-off point under a
    # tight budget, and with higher accuracy.
    assert full.score > ops_only.score
    assert full.accuracy > ops_only.accuracy


def test_ablation_ea_vs_reinforce(benchmark, space_a, surrogate_a, edge_setup):
    """Sec. III-D: "EA is as effective as RL but with higher efficiency."

    Both searchers get the paper's per-round budget (population/batch 50,
    20 rounds = 1000 evaluations). The claim holds if the EA matches or
    beats the REINFORCE controller at equal budget, and reaches the
    controller's final score in fewer evaluations.
    """
    predictor, _ = edge_setup
    objective = _objective(surrogate_a, predictor.predict)

    def experiment():
        ea = EvolutionarySearch(
            space_a, objective, EvolutionConfig(seed=11)
        ).run()
        rl = ReinforceSearch(
            space_a, objective,
            ReinforceConfig(iterations=20, batch_size=50,
                            learning_rate=3.0, seed=11),
        ).run()

        # Evaluations the EA needed to first match RL's final score.
        ea_evals_to_match = None
        seen = 0
        for gen in ea.generations:
            seen += len(gen.population)
            if gen.best.score >= rl.best.score and ea_evals_to_match is None:
                ea_evals_to_match = seen
        return ea, rl, ea_evals_to_match

    ea, rl, ea_evals_to_match = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print("\n=== Ablation: EA vs REINFORCE (1000 evaluations each) ===")
    print(f"  EA best score:        {ea.best.score:.4f}")
    print(f"  REINFORCE best score: {rl.best.score:.4f}")
    if ea_evals_to_match is not None:
        print(f"  EA matched RL's final score after {ea_evals_to_match} "
              f"evaluations (RL used {rl.num_evaluations})")

    # "As effective": EA >= RL at equal budget.
    assert ea.best.score >= rl.best.score - 1e-9
    # "Higher efficiency": EA reaches RL's final score with fewer evals.
    assert ea_evals_to_match is not None
    assert ea_evals_to_match <= rl.num_evaluations


def test_ablation_latency_predictor_family(benchmark, space_a, devices):
    """Fig. 2 quantified across the predictor family: the op-level LUT+B
    model beats the nn-Meter-style feature regression, which in turn
    beats the FLOPs-affine straw man — on every device."""

    def experiment():
        results = {}
        for key in ("gpu", "cpu", "edge"):
            device = devices[key]
            profiler = OnDeviceProfiler(device, seed=0)
            lut = LatencyLUT.build(space_a, device, samples_per_cell=2, seed=0)
            lut_pred = LatencyPredictor(lut, space_a)
            lut_pred.calibrate_bias(space_a, profiler, num_archs=30, seed=1)
            reg_pred = FeatureLatencyPredictor(space_a).fit(
                profiler, num_archs=30, seed=1
            )
            flops_pred = FlopsLatencyPredictor(space_a).fit(
                profiler, num_archs=30, seed=1
            )
            rng = np.random.default_rng(12)
            holdout = [space_a.sample(rng) for _ in range(40)]
            results[key] = (
                lut_pred.evaluate(space_a, profiler, holdout),
                reg_pred.evaluate(profiler, holdout),
                flops_pred.evaluate(profiler, holdout),
            )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\n=== Ablation: latency predictor family (RMSE, ms) ===")
    print(f"{'device':>6s} {'LUT+B':>8s} {'regression':>11s} {'FLOPs':>8s}")
    for key, (lut_r, reg_r, flops_r) in results.items():
        print(f"{key:>6s} {lut_r.rmse_ms:8.3f} {reg_r.rmse_ms:11.3f} "
              f"{flops_r.rmse_ms:8.3f}")

    for key, (lut_r, reg_r, flops_r) in results.items():
        assert lut_r.rmse_ms < reg_r.rmse_ms, key
        assert reg_r.rmse_ms < flops_r.rmse_ms * 1.02, key
        assert lut_r.rmse_ms < flops_r.rmse_ms * 0.75, key
