"""Fig. 5 + Fig. 6 (left) — progressive space shrinking.

Two claims are reproduced, with *real* supernet training (numpy
gradients) on the scaled-down demonstration task:

1. **Space-size accounting** (Fig. 5): each shrinking stage removes a
   fixed factor from ``|A|`` (K^4 = 625 ~ 10^2.8 per 4-layer stage at
   paper scale; K^1 per single-layer stage here).
2. **Shrink-then-tune beats naive training** (Fig. 6 left): at an equal
   total epoch budget, a supernet that progressively shrinks its space
   and tunes inside it reaches higher weight-sharing accuracy on the
   final space than one naively trained on the full space throughout.
"""

import numpy as np
import pytest

from repro.core import Objective, ProgressiveSpaceShrinking, SubspaceQuality
from repro.data import BatchLoader, SyntheticImageDataset
from repro.space import SearchSpace, mini
from repro.supernet import Supernet
from repro.train import SupernetTrainer, TrainConfig

_TOTAL_EPOCHS = 40  # equal budget for both arms (paper: 100 + 15 + 15)
_TUNE_EPOCHS = 6    # per stage (paper: 15)


def _make_task():
    dataset = SyntheticImageDataset.generate(
        num_classes=8, train_per_class=32, test_per_class=12,
        image_size=16, seed=3, noise=0.25,
    )
    space = SearchSpace(mini())
    return dataset, space


def _trainer(space, dataset, seed):
    loader = BatchLoader(dataset.train_x, dataset.train_y, batch_size=32,
                         seed=seed)
    supernet = Supernet(space, seed=seed)
    return SupernetTrainer(supernet, loader,
                           TrainConfig(base_lr=0.2, seed=seed))


def _mean_acc(trainer, space, dataset, num_archs=12, seed=9):
    return trainer.supernet_accuracy(
        space, dataset.test_x, dataset.test_y, num_archs=num_archs, seed=seed
    )


def test_fig5_progressive_space_shrinking(benchmark):
    def experiment():
        dataset, space = _make_task()
        base_epochs = _TOTAL_EPOCHS - 2 * _TUNE_EPOCHS

        # --- shrinking arm ---------------------------------------------
        shrunk = _trainer(space, dataset, seed=0)
        shrunk.train_epochs(space, epochs=base_epochs)

        objective = Objective(
            accuracy_fn=lambda arch: shrunk.evaluate_arch(
                arch, dataset.test_x, dataset.test_y
            ),
            latency_fn=lambda arch: space.arch_flops(arch) / 1e4,
            target_ms=120.0,
            beta=-0.05,
        )
        quality = SubspaceQuality(objective, num_samples=6, seed=1)
        milestone_spaces = []

        def tune_hook(sub, stage):
            milestone_spaces.append(sub)
            shrunk.tune_epochs(sub, _TUNE_EPOCHS, lr=0.05)

        shrinker = ProgressiveSpaceShrinking(
            quality, stage_layers=[(3,), (2,)], tune_hook=tune_hook,
        )
        result = shrinker.run(space)
        final_space = result.final_space
        milestone_spaces.append(final_space)
        shrunk.tune_epochs(final_space, _TUNE_EPOCHS, lr=0.02)

        # trajectory: accuracy on the stage-1 space after its tuning and
        # on the final space at the end (the Fig. 6-left curve points).
        shrunk_traj = [
            _mean_acc(shrunk, milestone_spaces[0], dataset),
            _mean_acc(shrunk, final_space, dataset),
        ]

        # --- naive arm: same epoch milestones, never shrinks -----------
        naive = _trainer(space, dataset, seed=0)
        naive.train_epochs(space, epochs=base_epochs + _TUNE_EPOCHS)
        naive_traj = [_mean_acc(naive, milestone_spaces[0], dataset)]
        naive.train_epochs(space, epochs=_TUNE_EPOCHS)
        naive_traj.append(_mean_acc(naive, final_space, dataset))

        return result, naive_traj, shrunk_traj

    result, naive_traj, shrunk_traj = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    naive_acc, shrunk_acc = naive_traj[-1], shrunk_traj[-1]

    removed = result.orders_of_magnitude_removed()
    print("\n=== Fig. 5 / Fig. 6 (left): progressive space shrinking ===")
    print(f"initial space:   log10|A| = {result.initial_log10_size:.1f}")
    for i, (size, orders) in enumerate(zip(result.stage_log10_sizes, removed)):
        print(f"after stage {i + 1}:  log10|A| = {size:.1f}  "
              f"(-{orders:.2f} orders of magnitude)")
    for decision in result.decisions():
        print(f"  layer {decision.layer}: chose op {decision.chosen_op} "
              f"(margin {decision.margin():.4f})")
    print(f"\nsupernet weight-sharing accuracy trajectory at equal budget "
          f"({_TOTAL_EPOCHS} epochs total), Fig. 6-left style:")
    print(f"  phase                  naive   shrink-then-tune")
    print(f"  after stage-1 budget   {naive_traj[0]:.3f}   {shrunk_traj[0]:.3f}")
    print(f"  after stage-2 budget   {naive_traj[1]:.3f}   {shrunk_traj[1]:.3f}")

    # Shape criteria.
    # At paper scale each 4-layer stage removes log10(5^4) ~= 2.8 orders
    # ("three orders of magnitude"); the single-layer stages here each
    # remove log10(5).
    for orders in removed:
        assert orders == pytest.approx(np.log10(5), rel=1e-6)
    # Fig. 6 (left): shrink-then-tune beats naive at equal budget.
    assert shrunk_acc > naive_acc
