"""Energy-constrained search — the paper's announced future work.

"In future, we plan to extend HSCoNAS, which will incorporate different
hardware constraints like power consumption." This benchmark runs that
extension end to end on the edge device: the Eq. 1 objective is
augmented with a one-sided energy-budget penalty, the energy side gets
its own LUT+bias predictor (the Eq. 2-3 pattern applied to a power
rail), and the EA searches under latency target *and* energy budget
simultaneously.
"""

import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    MultiConstraintObjective,
    Objective,
)
from repro.hardware import (
    EnergyModel,
    EnergyPredictor,
    LatencyLUT,
    LatencyPredictor,
    OnDeviceProfiler,
)

_TARGET_MS = 34.0


def test_energy_constrained_search(benchmark, space_a, surrogate_a, devices):
    device = devices["edge"]
    energy_model = EnergyModel(device)

    def experiment():
        # Latency predictor (Eq. 2-3).
        lut = LatencyLUT.build(space_a, device, samples_per_cell=2, seed=0)
        lat_predictor = LatencyPredictor(lut, space_a)
        profiler = OnDeviceProfiler(device, seed=0)
        lat_predictor.calibrate_bias(space_a, profiler, num_archs=25, seed=1)

        # Energy predictor (same pattern, power rail).
        energy_predictor = EnergyPredictor(space_a, energy_model).build(seed=0)
        energy_predictor.calibrate_bias(num_archs=25, seed=2)

        # Baseline: latency-only search (plain Eq. 1).
        cfg = EvolutionConfig(seed=8)
        latency_only = EvolutionarySearch(
            space_a,
            Objective(
                surrogate_a.proxy_accuracy, lat_predictor.predict,
                _TARGET_MS, beta=-0.5,
            ),
            cfg,
        ).run().best

        # The budget: 15% below what the latency-only winner burns —
        # tight enough that the constrained search must adapt.
        unconstrained_energy = energy_model.arch_energy_mj(
            space_a, latency_only.arch
        )
        budget = unconstrained_energy * 0.85

        constrained = EvolutionarySearch(
            space_a,
            MultiConstraintObjective(
                surrogate_a.proxy_accuracy,
                lat_predictor.predict,
                _TARGET_MS,
                energy_fn=energy_predictor.predict,
                energy_budget_mj=budget,
                beta=-0.5,
                beta_energy=-1.5,
            ),
            cfg,
        ).run().best

        return latency_only, constrained, budget, profiler

    latency_only, constrained, budget, profiler = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    lo_energy = energy_model.arch_energy_mj(space_a, latency_only.arch)
    co_energy = energy_model.arch_energy_mj(space_a, constrained.arch)
    lo_err = surrogate_a.top1_error(latency_only.arch)
    co_err = surrogate_a.top1_error(constrained.arch)
    co_lat = profiler.measure_ms(space_a, constrained.arch)

    print(f"\n=== Future-work extension: energy budget (edge, T={_TARGET_MS} ms) ===")
    print(f"latency-only search : {lo_energy:6.1f} mJ  "
          f"lat {latency_only.latency_ms:5.1f} ms  top-1 err {lo_err:5.2f}%")
    print(f"energy budget       : {budget:6.1f} mJ (-15%)")
    print(f"constrained search  : {co_energy:6.1f} mJ  "
          f"lat {co_lat:5.1f} ms  top-1 err {co_err:5.2f}%")
    print(f"accuracy cost of the energy budget: {co_err - lo_err:+.2f} pts")

    # The constrained run respects the budget (small predictor slack).
    assert co_energy <= budget * 1.05
    # It still honours the latency constraint.
    assert co_lat <= _TARGET_MS * 1.10
    # And the budget genuinely binds: energy dropped vs the baseline.
    assert co_energy < lo_energy
    # Physics costs something: bounded accuracy sacrifice.
    assert co_err >= lo_err - 0.1
    assert co_err - lo_err < 2.5
