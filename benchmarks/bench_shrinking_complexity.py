"""Sec. III-C complexity claim — progressive vs joint shrinking cost.

"If we evaluate the subspaces of four layers at the same time, it needs
to evaluate 5^4 subspaces, whereas our method only needs to evaluate
5 x 4 subspaces." Reproduced by counting subspace-quality estimates for
both procedures on a 2-layer stage (5^2 = 25 vs 5 x 2 = 10) and
extrapolating the 4-layer arithmetic, plus checking that the cheap
procedure reaches a near-equal-quality subspace.
"""

import pytest

from repro.core import (
    JointShrinking,
    Objective,
    ProgressiveSpaceShrinking,
    SubspaceQuality,
)
from repro.space import NUM_OPERATORS, SearchSpace, proxy

_N = 25  # F-evaluations per quality estimate (paper: 100)
_LAYERS = (7, 6)


def _objective(space):
    return Objective(
        accuracy_fn=lambda a: min(1.0, (space.arch_flops(a) / 2.5e5) ** 0.5),
        latency_fn=lambda a: space.arch_flops(a) / 1e4,
        target_ms=16.0,
        beta=-0.4,
    )


def test_shrinking_complexity(benchmark):
    def experiment():
        space = SearchSpace(proxy())
        objective = _objective(space)

        prog_quality = SubspaceQuality(objective, num_samples=_N, seed=0)
        shrinker = ProgressiveSpaceShrinking(
            prog_quality, stage_layers=[_LAYERS]
        )
        prog_result = shrinker.run(space)

        joint_quality = SubspaceQuality(objective, num_samples=_N, seed=0)
        joint = JointShrinking(joint_quality)
        joint_space, joint_evals = joint.run_stage(space, _LAYERS)
        return prog_result, prog_quality, joint_space, joint_evals, objective

    prog_result, prog_quality, joint_space, joint_evals, objective = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    k = NUM_OPERATORS
    n_layers = len(_LAYERS)
    prog_subspaces = prog_quality.evaluations // _N
    joint_subspaces = joint_evals // _N

    final_prog = prog_result.final_space
    q = SubspaceQuality(objective, num_samples=200, seed=99)
    q_prog = q.estimate(final_prog)
    q_joint = q.estimate(joint_space)

    print("\n=== Sec. III-C: shrinking complexity (2-layer stage) ===")
    print(f"progressive: {prog_subspaces} subspace evaluations "
          f"(K x layers = {k} x {n_layers})")
    print(f"joint:       {joint_subspaces} subspace evaluations "
          f"(K^layers = {k}^{n_layers})")
    print(f"paper-scale 4-layer stage: {k * 4} vs {k ** 4}")
    print(f"resulting subspace quality: progressive {q_prog:.4f}, "
          f"joint {q_joint:.4f}")

    # The claimed counts, exactly.
    assert prog_subspaces == k * n_layers
    assert joint_subspaces == k ** n_layers
    # The cheap procedure must not give up meaningful quality.
    assert q_prog >= q_joint - 0.01
