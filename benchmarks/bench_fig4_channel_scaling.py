"""Fig. 4 — conventional (uniform) vs dynamic (per-layer) channel scaling.

The conventional scheme takes a finished architecture and applies one
uniform width multiplier, chosen as the largest factor that still meets
the latency target. HSCoNAS's dynamic scheme searches a per-layer factor
vector jointly (here: EA over factors with the operators held fixed).
Both schemes get the same operators, the same latency budget, and the
same accuracy model — the dynamic scheme must find a better
accuracy/latency trade-off, which is the figure's point.
"""

import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    Objective,
    best_uniform_factor,
    greedy_fit_factors,
    uniform_scaled,
)
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler
from repro.space import Architecture, SearchSpace

_TARGET_MS = 30.0  # edge-device budget that forces scaling down


def _factors_only_space(space, ops):
    """The dynamic-scaling search space: operators pinned, factors free."""
    return SearchSpace(
        space.config,
        candidate_ops=[[op] for op in ops],
        candidate_factors=[list(space.config.channel_factors)] * space.num_layers,
    )


def test_fig4_channel_scaling(benchmark, space_a, surrogate_a, devices):
    device = devices["edge"]

    def experiment():
        lut = LatencyLUT.build(space_a, device, samples_per_cell=2, seed=0)
        predictor = LatencyPredictor(lut, space_a)
        profiler = OnDeviceProfiler(device, seed=0)
        predictor.calibrate_bias(space_a, profiler, num_archs=25, seed=1)

        # A strong fixed operator assignment (kernel-5 blocks all through).
        ops = (1,) * space_a.num_layers
        base = Architecture(ops, (1.0,) * space_a.num_layers)

        # Conventional: one uniform factor, largest that fits the budget.
        factor = best_uniform_factor(
            base,
            space_a.config.channel_factors,
            predictor.predict,
            target_ms=_TARGET_MS,
        )
        assert factor is not None
        conventional = uniform_scaled(base, factor)

        # Greedy per-layer fitting: deterministic middle ground.
        greedy = greedy_fit_factors(
            base,
            space_a.candidate_factors,
            predictor.predict,
            surrogate_a.proxy_accuracy,
            target_ms=_TARGET_MS,
        )

        # Dynamic: EA over the factor genes only (Sec. III-B + III-D).
        objective = Objective(
            accuracy_fn=surrogate_a.proxy_accuracy,
            latency_fn=predictor.predict,
            target_ms=_TARGET_MS,
            beta=-0.5,
        )
        search = EvolutionarySearch(
            _factors_only_space(space_a, ops),
            objective,
            EvolutionConfig(generations=15, population_size=40,
                            num_parents=15, seed=2),
        )
        dynamic = search.run().best.arch
        return conventional, factor, greedy, dynamic, predictor

    conventional, factor, greedy, dynamic, predictor = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    conv_lat = predictor.predict(conventional)
    greedy_lat = predictor.predict(greedy)
    dyn_lat = predictor.predict(dynamic)
    conv_err = surrogate_a.top1_error(conventional)
    greedy_err = surrogate_a.top1_error(greedy)
    dyn_err = surrogate_a.top1_error(dynamic)

    print("\n=== Fig. 4: conventional vs dynamic channel scaling (edge, "
          f"T={_TARGET_MS} ms) ===")
    print(f"conventional: uniform factor {factor:.1f}  "
          f"latency {conv_lat:5.1f} ms  top-1 err {conv_err:5.2f}%")
    print(f"greedy:       latency {greedy_lat:5.1f} ms  "
          f"top-1 err {greedy_err:5.2f}%")
    print(f"dynamic:      per-layer factors {dynamic.factors}")
    print(f"              latency {dyn_lat:5.1f} ms  top-1 err {dyn_err:5.2f}%")
    print(f"accuracy gain from dynamic scaling: {conv_err - dyn_err:+.2f} pts "
          f"at comparable latency")

    # Shape criteria: dynamic scaling uses the budget better.
    assert dyn_lat <= _TARGET_MS * 1.05
    assert greedy_lat <= _TARGET_MS
    assert dyn_err < conv_err
    # The searched per-layer factors beat (or match) the greedy fit,
    # which beats the uniform multiplier.
    assert dyn_err <= greedy_err + 0.1
    assert greedy_err < conv_err
    # The dynamic factors must actually vary per layer (not collapse to
    # the uniform solution).
    assert len(set(dynamic.factors)) > 1
