"""NSGA-II Pareto front vs sweeping the Eq. 1 constraint.

The weighted-sum objective finds one architecture per latency target;
the NSGA-II extension recovers the whole accuracy/latency front in one
run. This benchmark verifies that the single NSGA-II run (1000
evaluations) matches the quality of five independent Eq. 1 searches
(5000 evaluations) at their respective targets.
"""

import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    Nsga2Config,
    Nsga2Search,
    Objective,
)
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler

_SWEEP_TARGETS = (22.0, 28.0, 34.0, 40.0, 46.0)


def test_nsga2_front_vs_constraint_sweep(benchmark, space_a, surrogate_a, devices):
    device = devices["edge"]

    def experiment():
        lut = LatencyLUT.build(space_a, device, samples_per_cell=2, seed=0)
        predictor = LatencyPredictor(lut, space_a)
        profiler = OnDeviceProfiler(device, seed=0)
        predictor.calibrate_bias(space_a, profiler, num_archs=25, seed=1)

        nsga = Nsga2Search(
            space_a,
            accuracy_fn=surrogate_a.proxy_accuracy,
            latency_fn=predictor.predict,
            config=Nsga2Config(generations=20, population_size=50, seed=3),
        ).run()

        sweep = {}
        for target in _SWEEP_TARGETS:
            best = EvolutionarySearch(
                space_a,
                Objective(
                    surrogate_a.proxy_accuracy, predictor.predict,
                    target_ms=target, beta=-0.5,
                ),
                EvolutionConfig(seed=3),
            ).run().best
            sweep[target] = best
        return nsga, sweep

    nsga, sweep = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== NSGA-II front vs Eq. 1 constraint sweep (edge) ===")
    print(f"NSGA-II: {len(nsga.front)} front points from "
          f"{nsga.num_evaluations} evaluations")
    print("front (latency ms -> proxy accuracy):")
    for p in nsga.front[:: max(1, len(nsga.front) // 10)]:
        print(f"  {p.latency_ms:6.1f} -> {p.accuracy:.4f}")
    print("\nEq. 1 sweep (5 searches x 1000 evaluations):")
    total_sweep_evals = 0
    for target, best in sweep.items():
        knee = nsga.knee_under(target * 1.02)
        gap = knee.accuracy - best.accuracy
        print(f"  T={target:5.1f}: sweep acc {best.accuracy:.4f} "
              f"(lat {best.latency_ms:5.1f}) | NSGA-II knee {knee.accuracy:.4f} "
              f"(lat {knee.latency_ms:5.1f})  gap {gap:+.4f}")
        total_sweep_evals += 1000

    # Shape criteria: one NSGA-II run covers all sweep targets with at
    # most a small accuracy gap at each, using ~5x fewer evaluations.
    for target, best in sweep.items():
        knee = nsga.knee_under(target * 1.02)
        assert knee.accuracy >= best.accuracy - 0.012, target
    assert nsga.num_evaluations < total_sweep_evals / 3
    # The front spans the whole sweep range.
    lats = [p.latency_ms for p in nsga.front]
    assert min(lats) < _SWEEP_TARGETS[0]
    assert max(lats) > _SWEEP_TARGETS[-2]
