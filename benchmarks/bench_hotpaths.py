"""Hot-path micro-benchmarks: loop reference vs. vectorized rewrite.

Standalone script (not collected by pytest — ``testpaths`` excludes
``benchmarks/``); run it as::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--quick] [--out PATH]

Three hot paths are timed, each against the loop implementation the
vectorized code replaced:

1. **Depthwise/grouped convolution** — per-group Python loop
   (``grouped_conv2d_loop`` + ``grouped_conv2d_loop_backward``) vs. the
   single batched GEMM in :class:`repro.nn.layers.Conv2d`, forward and
   backward together.
2. **Batch latency prediction** — per-architecture
   :meth:`LatencyLUT.sum_ops_ms` over 5 000 sampled architectures vs.
   one :meth:`LatencyLUT.sum_ops_ms_batch` gather on the paper-scale
   ``imagenet_a`` space.
3. **Eq. 4 quality estimate on the real supernet**
   (``eq4_quality_estimate``) — the pre-PR path (one training-style
   supernet forward per candidate via
   :meth:`SupernetTrainer.evaluate_arch`) vs. the single-core fast path
   of :class:`repro.supernet.SupernetFastEval`: no-grad eval forwards,
   all N candidates batched into one forward per layer, and opt-in int8
   GEMMs on the deployment weight grid. The entry records per-stage
   wall-time attribution (im2col / GEMM / scoring / other) for both the
   float and int8 fast paths, the float path's exactness delta against
   per-arch eval-mode forwards (must be 0.0), and the int8 path's
   ranking-fidelity gate (Kendall tau and top-K overlap against fp32).
4. **Batched objective** (``eq4_objective_batch``) — one-at-a-time
   ``Objective.evaluate`` over the N=100 sample vs.
   :meth:`SubspaceQuality.estimate` backed by ``evaluate_many`` with a
   batched latency predictor (the surrogate-based analytic path).

Three more entries time the multi-process evaluation backend against the
same work run serially (``--workers``, default 4): an Eq. 4 quality
estimate, one progressive-shrinking stage, and one EA search. Every
parallel entry records ``max_abs_delta`` against the serial result — the
engine's contract is bit-exactness, so the delta must be 0.0 — plus the
host ``cpu_count``, because worker speedup is meaningless without it.
``--backend serial`` (or ``auto`` with ``--workers`` < 2) skips these
entries: there is no second backend to compare against.

A ``serve_traffic`` entry drives synthetic query traffic against
an in-process ``repro.serve`` daemon through the real HTTP client:
queries/sec and client-observed p50/p99 at 1/2/4 concurrent clients
(the warm-cache saturation curve), plus the cold first-query cost and
a point-for-point ``max_abs_delta`` (must be 0.0) between the served
front and the offline pipeline run.

A final ``tabular_replay`` entry times a live supernet-backed
evolutionary search against the same search replayed from an
exhaustive :class:`repro.tabular.TabularBenchmark` — every generation
scored by one vectorized column gather instead of supernet forwards.
The replayed run's full result dict must equal the live run's
(``max_abs_delta`` must be 0.0): the table's columns were built from
the very same evaluation functions, so replay is a lookup, not an
approximation.

Results (times, speedups, equivalence deltas) are written to
``BENCH_hotpaths.json``. Expected on the CI container: >=5x on the
depthwise conv, >=20x on batch latency prediction, >=3x on the
supernet Eq. 4 estimate via no-grad + batched + int8, >=100x on
tabular replay vs the live supernet-backed search; >=2x on the
parallel quality estimate when the host has >=4 cores.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.accuracy import AccuracySurrogate
from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.objective import Objective
from repro.core.quality import SubspaceQuality
from repro.hardware.calibration import calibrated_devices
from repro.hardware.lut import LatencyLUT
from repro.hardware.predictor import LatencyPredictor
from repro.data import BatchLoader
from repro.data.synthetic import SyntheticImageDataset
from repro.nn.functional import grouped_conv2d_loop, grouped_conv2d_loop_backward
from repro.nn.layers.conv import Conv2d
from repro.nn.quantized import ranking_fidelity
from repro.parallel import create_backend, resolve_backend_name
from repro.runstate.atomic import atomic_write_json
from repro.space import SearchSpace, imagenet_a, proxy
from repro.supernet import Supernet, SupernetFastEval
from repro.train.supernet_trainer import SupernetTrainer, TrainConfig


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time in seconds (minimum is the least noisy)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- 1. depthwise conv forward+backward ---------------------------------------


def bench_depthwise_conv(quick: bool) -> dict:
    # Full size mirrors the deepest depthwise layers of ``imagenet_a``
    # (320 channels at 7x7), where the per-group Python loop hurts most.
    n, c, hw, k = (2, 32, 16, 3) if quick else (4, 320, 7, 3)
    repeats = 3 if quick else 5
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, c, hw, hw))
    conv = Conv2d(c, c, k, stride=1, padding=k // 2, groups=c, rng=rng)
    conv.train()
    weight = conv.weight.data
    grad_out = rng.standard_normal((n, c, hw, hw))

    def loop_path():
        out, cols = grouped_conv2d_loop(x, weight, 1, k // 2, c)
        grouped_conv2d_loop_backward(
            grad_out.reshape(n, c, -1), cols, weight, x.shape, 1, k // 2, c
        )
        return out

    def vec_path():
        out = conv.forward(x)
        conv.backward(grad_out)
        return out

    # Correctness guard before timing anything.
    out_loop, cols = grouped_conv2d_loop(x, weight, 1, k // 2, c)
    gx_loop, gw_loop = grouped_conv2d_loop_backward(
        grad_out.reshape(n, c, -1), cols, weight, x.shape, 1, k // 2, c
    )
    out_vec = conv.forward(x)
    conv.weight.grad = None
    gx_vec = conv.backward(grad_out)
    max_delta = max(
        float(np.abs(out_loop.reshape(out_vec.shape) - out_vec).max()),
        float(np.abs(gx_loop - gx_vec).max()),
        float(np.abs(gw_loop - conv.weight.grad).max()),
    )
    assert max_delta < 1e-6, f"loop/vectorized mismatch: {max_delta}"

    t_loop = _best_of(loop_path, repeats)
    t_vec = _best_of(vec_path, repeats)
    return {
        "shape": [n, c, hw, hw],
        "groups": c,
        "kernel": k,
        "loop_s": t_loop,
        "vectorized_s": t_vec,
        "speedup": t_loop / t_vec,
        "max_abs_delta": max_delta,
    }


# -- 2. batch latency prediction ----------------------------------------------


def bench_latency_batch(quick: bool) -> dict:
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["cpu"]
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)

    num_archs = 500 if quick else 5000
    repeats = 2 if quick else 5
    rng = np.random.default_rng(7)
    archs = [space.sample(rng) for _ in range(num_archs)]

    scalar = [lut.sum_ops_ms(a, space) for a in archs]
    batch = lut.sum_ops_ms_batch(archs, space)
    max_delta = float(np.abs(np.asarray(scalar) - batch).max())
    assert max_delta == 0.0, f"batch/scalar latency mismatch: {max_delta}"
    pm_delta = max(
        abs(predictor.predict(a) - p)
        for a, p in zip(archs, predictor.predict_many(archs))
    )
    assert pm_delta == 0.0, f"predict_many mismatch: {pm_delta}"

    t_loop = _best_of(lambda: [lut.sum_ops_ms(a, space) for a in archs], repeats)
    t_vec = _best_of(lambda: lut.sum_ops_ms_batch(archs, space), repeats)
    return {
        "space": "imagenet_a",
        "num_archs": num_archs,
        "loop_s": t_loop,
        "vectorized_s": t_vec,
        "speedup": t_loop / t_vec,
        "max_abs_delta": max_delta,
    }


# -- 3. Eq. 4 quality estimate on the real supernet ---------------------------


def bench_supernet_quality(quick: bool) -> dict:
    """Per-arch training-style forwards vs the no-grad+batched+int8 path.

    The baseline is exactly what the search stack ran before the fast
    path existed: one :meth:`SupernetTrainer.evaluate_arch` call per
    candidate. The fast path batches all candidates through
    :class:`SupernetFastEval`; its float flavour must be bit-exact with
    per-arch eval-mode forwards, its int8 flavour must pass the
    ranking-fidelity gate against the float scores.
    """
    cfg = proxy()
    space = SearchSpace(cfg)
    net = Supernet(space, seed=0)
    ds = SyntheticImageDataset.generate(
        num_classes=cfg.num_classes,
        train_per_class=16,
        test_per_class=4,
        image_size=cfg.input_size,
        channels=cfg.input_channels,
        seed=0,
    )
    loader = BatchLoader(ds.train_x, ds.train_y, batch_size=16, seed=0)
    trainer = SupernetTrainer(net, loader, TrainConfig(base_lr=0.1, seed=0))
    epochs = 1 if quick else 3
    trainer.train_epochs(space, epochs=epochs)

    num_archs = 20 if quick else 100
    repeats = 2 if quick else 3
    rng = np.random.default_rng(7)
    archs = [space.sample(rng) for _ in range(num_archs)]
    images, labels = ds.test_x[:16], ds.test_y[:16]

    fast_float = SupernetFastEval(net, precision="float")
    fast_int8 = SupernetFastEval(net, precision="int8")

    # Exactness guard: the float batched forward must be bit-identical
    # to one eval-mode supernet forward per architecture.
    ref_logits = []
    net.eval()
    for arch in archs:
        net.set_architecture(arch)
        ref_logits.append(net.forward(images))
    ref_logits = np.stack(ref_logits)
    net.train()
    float_logits = fast_float.forward_many(archs, images)
    max_delta = float(np.abs(ref_logits - float_logits).max())
    assert max_delta == 0.0, f"fast float path not bit-exact: {max_delta}"

    # Ranking-fidelity gate for int8: per-arch mean true-class logit.
    int8_logits = fast_int8.forward_many(archs, images)
    sample_idx = np.arange(images.shape[0])
    ref_scores = [float(l[sample_idx, labels].mean()) for l in float_logits]
    int8_scores = [float(l[sample_idx, labels].mean()) for l in int8_logits]
    fidelity = ranking_fidelity(
        ref_scores, int8_scores, top_k=max(1, num_archs // 10)
    )
    if not quick:
        assert fidelity["passed"], f"int8 ranking fidelity failed: {fidelity}"

    def per_arch_path():
        return [trainer.evaluate_arch(a, images, labels) for a in archs]

    t_base = _best_of(per_arch_path, repeats)
    t_float = _best_of(
        lambda: fast_float.accuracy_many(archs, images, labels), repeats
    )
    t_int8 = _best_of(
        lambda: fast_int8.accuracy_many(archs, images, labels), repeats
    )

    # Per-stage attribution for one representative run of each flavour.
    fast_float.reset_stage_times()
    fast_float.accuracy_many(archs, images, labels)
    stages_float = fast_float.stage_times()
    fast_int8.reset_stage_times()
    fast_int8.accuracy_many(archs, images, labels)
    stages_int8 = fast_int8.stage_times()

    return {
        "space": "proxy_supernet",
        "num_archs": num_archs,
        "num_images": int(images.shape[0]),
        "train_epochs": epochs,
        "per_arch_s": t_base,
        "no_grad_batched_s": t_float,
        "int8_batched_s": t_int8,
        # loop_s/vectorized_s mirror the other entries' schema; the
        # headline speedup is the full no-grad + batched + int8 path.
        "loop_s": t_base,
        "vectorized_s": t_int8,
        "speedup": t_base / t_int8,
        "speedup_float": t_base / t_float,
        "max_abs_delta": max_delta,
        "fidelity_int8": fidelity,
        "stages_float": stages_float,
        "stages_int8": stages_int8,
    }


# -- 4. batched objective (surrogate path) ------------------------------------


def bench_objective_batch(quick: bool) -> dict:
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["cpu"]
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)
    surrogate = AccuracySurrogate.for_space(space)

    scalar_obj = Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=22.5,
        beta=-0.5,
    )
    batched_obj = Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=22.5,
        beta=-0.5,
        latency_many_fn=predictor.predict_many,
    )
    num_samples = 50 if quick else 100
    repeats = 2 if quick else 5

    def run_estimate(obj):
        q = SubspaceQuality(obj, num_samples=num_samples, seed=3)
        return q.estimate(space)

    q_scalar = run_estimate(scalar_obj)
    q_batched = run_estimate(batched_obj)
    delta = abs(q_scalar - q_batched)
    assert delta == 0.0, f"quality estimate mismatch: {delta}"

    t_loop = _best_of(lambda: run_estimate(scalar_obj), repeats)
    t_vec = _best_of(lambda: run_estimate(batched_obj), repeats)
    return {
        "space": "imagenet_a",
        "num_samples": num_samples,
        "loop_s": t_loop,
        "vectorized_s": t_vec,
        "speedup": t_loop / t_vec,
        "max_abs_delta": delta,
    }


# -- 4-6. serial vs multi-process evaluation engine ---------------------------


def _engine_objective() -> tuple[SearchSpace, Objective]:
    """The batched objective both engine paths share (workers only change
    where ``evaluate_many`` runs, never what it computes)."""
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["cpu"]
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)
    surrogate = AccuracySurrogate.for_space(space)
    obj = Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=22.5,
        beta=-0.5,
        latency_many_fn=predictor.predict_many,
    )
    return space, obj


def bench_quality_parallel(quick: bool, workers: int, backend: str) -> dict:
    space, obj = _engine_objective()
    num_samples = 50 if quick else 400
    repeats = 2 if quick else 5

    def run(evaluator):
        q = SubspaceQuality(
            obj, num_samples=num_samples, seed=3, evaluator=evaluator
        )
        return q.estimate(space)

    q_serial = run(None)
    with create_backend(backend, obj.evaluate_many, workers=workers) as evaluator:
        q_parallel = run(evaluator)  # also warms the pool before timing
        delta = abs(q_serial - q_parallel)
        assert delta == 0.0, f"parallel quality mismatch: {delta}"
        t_serial = _best_of(lambda: run(None), repeats)
        t_parallel = _best_of(lambda: run(evaluator), repeats)
    return {
        "space": "imagenet_a",
        "num_samples": num_samples,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "max_abs_delta": delta,
    }


def bench_shrink_stage_parallel(quick: bool, workers: int, backend: str) -> dict:
    # One progressive-shrinking stage: K candidate subspaces for the last
    # layer, each scored with an indexed Eq. 4 estimate (Sec. III-C).
    space, obj = _engine_objective()
    layer = len(space.candidate_ops) - 1
    subspaces = [
        space.fix_operator(layer, op) for op in space.candidate_ops[layer]
    ]
    indices = list(range(len(subspaces)))
    num_samples = 30 if quick else 150
    repeats = 2 if quick else 5

    def run(evaluator):
        q = SubspaceQuality(
            obj, num_samples=num_samples, seed=11, evaluator=evaluator
        )
        return q.estimate_many(subspaces, indices=indices)

    serial = run(None)
    with create_backend(backend, obj.evaluate_many, workers=workers) as evaluator:
        parallel = run(evaluator)
        delta = max(abs(a - b) for a, b in zip(serial, parallel))
        assert delta == 0.0, f"parallel shrink-stage mismatch: {delta}"
        t_serial = _best_of(lambda: run(None), repeats)
        t_parallel = _best_of(lambda: run(evaluator), repeats)
    return {
        "space": "imagenet_a",
        "num_subspaces": len(subspaces),
        "num_samples": num_samples,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "max_abs_delta": delta,
    }


def bench_ea_generation_parallel(quick: bool, workers: int, backend: str) -> dict:
    # A short EA run (init population + breeding generations); every
    # evaluation batch routes through the worker pool when parallel.
    space, obj = _engine_objective()
    cfg = EvolutionConfig(
        generations=2,
        population_size=20 if quick else 100,
        num_parents=8 if quick else 25,
        seed=2,
    )
    repeats = 2 if quick else 5

    def run(evaluator):
        # Fresh search (and fresh cache) per run: a shared cache would
        # turn every repeat after the first into pure hits.
        return EvolutionarySearch(space, obj, cfg, evaluator=evaluator).run()

    serial = run(None)
    with create_backend(backend, obj.evaluate_many, workers=workers) as evaluator:
        parallel = run(evaluator)
        assert parallel.to_dict() == serial.to_dict(), "parallel EA mismatch"
        delta = abs(parallel.best.score - serial.best.score)
        t_serial = _best_of(lambda: run(None), repeats)
        t_parallel = _best_of(lambda: run(evaluator), repeats)
    return {
        "space": "imagenet_a",
        "generations": cfg.generations,
        "population_size": cfg.population_size,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "max_abs_delta": delta,
    }


# -- 7. serve: synthetic traffic against the search daemon --------------------


def bench_serve_traffic(quick: bool) -> dict:
    """Synthetic query traffic against an in-process ``repro.serve`` daemon.

    One server (serial evaluation backend), hammered by 1/2/4 client
    threads issuing the same front query — the saturation curve for the
    warm-cache hot path. The first request pays the one cold NSGA-II
    computation; everything after is the cache + coalescing + HTTP
    overhead the daemon adds, which is what this entry measures
    (queries/sec and client-observed p50/p99). The served front is
    compared point-for-point against the offline pipeline run —
    ``max_abs_delta`` must be 0.0.
    """
    import threading

    from repro.serve import ServeClient, ServeConfig, start_server
    from repro.serve.metrics import percentile
    from repro.serve.pipeline import (
        build_front_predictor,
        front_search,
        space_for_layout,
    )
    from repro.serve.query import FrontQuery

    query = dict(
        device="edge", layout="proxy", seed=3,
        generations=2 if quick else 5,
        population_size=8 if quick else 20,
    )
    requests_per_level = 30 if quick else 200
    levels = (1, 2, 4)

    config = ServeConfig(backend="serial", quiet=True)
    server, thread = start_server(config)
    try:
        client = ServeClient(*server.endpoint)

        t0 = time.perf_counter()
        served = client.front(**query, target_ms=50.0)
        cold_s = time.perf_counter() - t0

        # Bit-exactness vs the offline pipeline, point for point.
        q = FrontQuery(**query)
        space = space_for_layout(q.layout)
        predictor = build_front_predictor(space, q.device, q.seed)
        offline = front_search(
            space, predictor, seed=q.seed, generations=q.generations,
            population_size=q.population_size, backend="serial",
        )
        assert len(served["front"]) == len(offline.front)
        max_delta = max(
            max(
                abs(got["latency_ms"] - want.latency_ms),
                abs(got["accuracy"] - want.accuracy),
            )
            for got, want in zip(served["front"], offline.front)
        )
        assert max_delta == 0.0, f"served/offline mismatch: {max_delta}"

        curve = []
        for clients in levels:
            latencies = []
            lock = threading.Lock()
            per_client = requests_per_level // clients

            def hammer():
                mine = []
                for _ in range(per_client):
                    t = time.perf_counter()
                    status, _body = client.request_raw(
                        "GET",
                        "/front?device={device}&layout={layout}"
                        "&seed={seed}&generations={generations}"
                        "&population_size={population_size}".format(**query),
                    )
                    mine.append(time.perf_counter() - t)
                    assert status == 200
                with lock:
                    latencies.extend(mine)

            workers = [
                threading.Thread(target=hammer) for _ in range(clients)
            ]
            t0 = time.perf_counter()
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            wall_s = time.perf_counter() - t0
            window = sorted(ms * 1e3 for ms in latencies)
            curve.append({
                "clients": clients,
                "requests": len(latencies),
                "qps": len(latencies) / wall_s,
                "p50_ms": percentile(window, 0.50),
                "p99_ms": percentile(window, 0.99),
            })

        metrics = client.metrics()
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=30)

    warm = max(curve, key=lambda row: row["qps"])
    return {
        "query": query,
        "cold_front_s": cold_s,
        "saturation_curve": curve,
        "best_qps": warm["qps"],
        "p99_ms_at_best": warm["p99_ms"],
        "coalesced": metrics["queries"]["coalesced"],
        "front_cache": metrics["front_cache"],
        "max_abs_delta": max_delta,
    }


# -- 8. chaos drill: overloaded + fault-injected daemon stays deterministic ---


def bench_serve_chaos(quick: bool) -> dict:
    """Mixed traffic against a saturated, fault-injected daemon.

    One in-process server with tight admission (1 computing slot, 2
    queue slots) and seeded chaos on every live front computation,
    hammered at ~4x saturation. The drill asserts the overload
    contract from docs/robustness.md — every single response is one
    of: 200 healthy (byte-identical per query), 200 degraded (flagged),
    503 shed (deterministic + Retry-After), 504 deadline (partial
    progress), or 500 injected fault — and the daemon answers
    ``/healthz`` after the storm. Reported numbers are the shed rate
    and the client-observed p99 under overload.
    """
    import threading

    from repro.serve import ServeClient, ServeConfig, start_server
    from repro.serve.metrics import percentile

    clients = 4
    per_client = 8 if quick else 25
    seeds = (3, 4, 5)
    query = dict(
        device="edge", layout="proxy",
        generations=2 if quick else 4,
        population_size=8 if quick else 16,
    )

    config = ServeConfig(
        backend="serial",
        quiet=True,
        max_inflight=1,
        queue_depth=2,
        queue_timeout_s=0.2,
        breaker_failures=3,
        breaker_cooldown_s=0.5,
        chaos="seed=7,error=0.25,burst=2",
    )
    server, thread = start_server(config)
    counts = {
        "healthy": 0, "degraded": 0, "shed": 0,
        "deadline": 0, "fault": 0,
    }
    latencies = []
    healthy_bodies = {}
    lock = threading.Lock()
    try:
        client = ServeClient(*server.endpoint)

        # One doomed request up front: an expired deadline must answer
        # 504 with generation-granular progress, never hang.
        status, body = client.request_raw(
            "POST",
            "/query",
            body={**query, "seed": 99, "deadline_ms": 1},
        )
        deadline_ok = status in (504, 500, 503)
        if status == 504:
            progress = json.loads(body)["progress"]
            assert progress["generations_done"] == 0
            with lock:
                counts["deadline"] += 1
        assert deadline_ok, f"deadline probe got {status}: {body!r}"

        def classify(path, status, body):
            if status == 200:
                payload = json.loads(body)
                if payload.get("degraded"):
                    return "degraded"
                healthy_bodies.setdefault(path, set()).add(body)
                return "healthy"
            if status == 503:
                payload = json.loads(body)
                assert payload["shed"] is True
                assert payload["retry_after_s"] >= 1
                return "shed"
            if status == 504:
                assert "progress" in json.loads(body)
                return "deadline"
            if status == 500:
                assert b"ChaosError" in body, body
                return "fault"
            raise AssertionError(f"unclassifiable HTTP {status}: {body!r}")

        def hammer(worker_id):
            mine = []
            classes = []
            for i in range(per_client):
                seed = seeds[(worker_id + i) % len(seeds)]
                path = (
                    "/front?device={device}&layout={layout}&seed={s}"
                    "&generations={generations}"
                    "&population_size={population_size}"
                ).format(**query, s=seed)
                t = time.perf_counter()
                status, body = client.request_raw("GET", path)
                mine.append(time.perf_counter() - t)
                classes.append(classify(path, status, body))
            with lock:
                latencies.extend(mine)
                for cls in classes:
                    counts[cls] += 1

        workers = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(clients)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        # Liveness after the storm, and per-query byte-identity of
        # every healthy response.
        alive = client.health() == {"status": "ok"}
        assert alive, "daemon died under chaos"
        bit_identical = all(
            len(bodies) == 1 for bodies in healthy_bodies.values()
        )
        assert bit_identical, {
            path: len(bodies) for path, bodies in healthy_bodies.items()
        }
        metrics = client.metrics()
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=30)

    total = sum(counts.values())
    window = sorted(ms * 1e3 for ms in latencies)
    return {
        "chaos": config.chaos,
        "clients": clients,
        "requests": total,
        "outcomes": counts,
        "shed_rate": counts["shed"] / total,
        "p99_ms_under_overload": percentile(window, 0.99),
        "p50_ms_under_overload": percentile(window, 0.50),
        "alive_after_storm": alive,
        "non_degraded_bit_identical": bit_identical,
        "resilience": metrics["resilience"],
    }


# -- 9. tabular replay: live supernet-backed search vs column gathers ---------


def bench_tabular_replay(quick: bool) -> dict:
    """Live supernet-backed EA vs the same EA replayed from a table.

    The table is built exhaustively over the mini space with the same
    evaluation functions the live search uses — accuracy from the
    batched :class:`SupernetFastEval` float path (bit-exact with
    per-arch forwards), latency from the LUT predictor's
    ``predict_many``. The replayed search therefore scores every
    population with one gather per column and must reproduce the live
    result byte for byte.
    """
    from repro.space import mini, space_for_layout
    from repro.tabular import TabularBenchmark, TabularEvaluator

    if quick:
        # Two operators per layer: 6^4 = 1,296 architectures, so the
        # exhaustive build stays within a CI smoke budget.
        space = SearchSpace(mini(), candidate_ops=[(0, 2)] * 4)
    else:
        # Three operators per layer: 9^4 = 6,561 architectures. Large
        # enough that the replayed EA's fixed overhead amortizes away,
        # small enough that the exhaustive supernet-backed build stays
        # in benchmark (not batch-job) territory — the full 15^4 mini
        # space costs ~8x more build time for the same speedup story.
        space = SearchSpace(mini(), candidate_ops=[(0, 1, 2)] * 4)
    cfg = space.config
    device = calibrated_devices()["edge"]

    net = Supernet(space, seed=0)
    ds = SyntheticImageDataset.generate(
        num_classes=cfg.num_classes,
        train_per_class=8,
        test_per_class=2 if quick else 8,
        image_size=cfg.input_size,
        channels=cfg.input_channels,
        seed=0,
    )
    images, labels = ds.test_x, ds.test_y
    fast = SupernetFastEval(net, precision="float")

    def accuracy_many(batch):
        # Bounded chunks keep the batched forward's activation memory
        # flat across the 50k-arch exhaustive build.
        out = []
        for i in range(0, len(batch), 256):
            out.extend(fast.accuracy_many(batch[i:i + 256], images, labels))
        return out

    def accuracy_one(arch):
        return accuracy_many([arch])[0]

    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)

    t0 = time.perf_counter()
    table = TabularBenchmark.build(
        space,
        predictor.predict,
        accuracy_one,
        num_archs=None,
        seed=0,
        device="edge",
        latency_many_fn=predictor.predict_many,
        accuracy_many_fn=accuracy_many,
    )
    build_s = time.perf_counter() - t0

    target_ms = float(np.median(table.latency_column("edge")))
    ea_cfg = EvolutionConfig(
        generations=3 if quick else 12,
        population_size=8 if quick else 40,
        num_parents=3 if quick else 12,
        seed=2,
    )

    def run_live():
        obj = Objective(
            accuracy_fn=accuracy_one,
            latency_fn=predictor.predict,
            target_ms=target_ms,
            beta=-0.5,
            accuracy_many_fn=accuracy_many,
            latency_many_fn=predictor.predict_many,
        )
        return EvolutionarySearch(space, obj, ea_cfg).run()

    def run_replay():
        lookup = TabularEvaluator(table, device="edge")
        obj = Objective(
            accuracy_fn=lookup.accuracy,
            latency_fn=lookup.latency,
            target_ms=target_ms,
            beta=-0.5,
            accuracy_many_fn=lookup.accuracy_many,
            latency_many_fn=lookup.latency_many,
        )
        with create_backend("tabular", obj.evaluate_many) as evaluator:
            return EvolutionarySearch(
                space, obj, ea_cfg, evaluator=evaluator
            ).run()

    live = run_live()
    replay = run_replay()
    assert replay.to_dict() == live.to_dict(), "replayed search diverged"
    max_delta = max(
        max(
            abs(a.best.score - b.best.score),
            abs(a.best.latency_ms - b.best.latency_ms),
        )
        for a, b in zip(live.generations, replay.generations)
    )
    assert max_delta == 0.0, f"live/replay mismatch: {max_delta}"

    t_live = _best_of(run_live, 1 if quick else 2)
    t_replay = _best_of(run_replay, 3 if quick else 5)
    return {
        "space": "mini[2-op]" if quick else "mini[3-op]",
        "table_rows": len(table),
        "generations": ea_cfg.generations,
        "population_size": ea_cfg.population_size,
        "build_s": build_s,
        "live_s": t_live,
        "replay_s": t_replay,
        "loop_s": t_live,
        "vectorized_s": t_replay,
        "speedup": t_live / t_replay,
        "max_abs_delta": max_delta,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller problem sizes / fewer repeats (CI smoke run)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent
        / "BENCH_hotpaths.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker processes for the parallel-engine entries",
    )
    parser.add_argument(
        "--backend", choices=("auto", "serial", "multiprocess"),
        default="auto",
        help="evaluation backend for the engine entries; a serial "
             "resolution skips the serial-vs-parallel comparisons",
    )
    args = parser.parse_args()
    # Fail on an unwritable --out before minutes of timing, not after.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    resolved = resolve_backend_name(args.backend, args.workers)

    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "backend": resolved,
    }
    for name, fn in (
        ("depthwise_conv_fwd_bwd", bench_depthwise_conv),
        ("latency_batch_5k", bench_latency_batch),
        ("eq4_quality_estimate", bench_supernet_quality),
        ("eq4_objective_batch", bench_objective_batch),
    ):
        results[name] = fn(args.quick)
        r = results[name]
        print(
            f"{name:>24s}: loop {r['loop_s'] * 1e3:9.2f} ms   "
            f"vectorized {r['vectorized_s'] * 1e3:9.2f} ms   "
            f"speedup {r['speedup']:6.1f}x"
        )
    eq4 = results["eq4_quality_estimate"]
    print(
        f"{'':>24s}  per-arch {eq4['per_arch_s'] * 1e3:9.2f} ms   "
        f"no-grad batched {eq4['no_grad_batched_s'] * 1e3:9.2f} ms   "
        f"int8 {eq4['int8_batched_s'] * 1e3:9.2f} ms   "
        f"(tau {eq4['fidelity_int8']['kendall_tau']:.4f}, "
        f"top-K overlap {eq4['fidelity_int8']['top_k_overlap']:.2f})"
    )

    for name, fn in (
        ("eq4_quality_parallel", bench_quality_parallel),
        ("shrink_stage_parallel", bench_shrink_stage_parallel),
        ("ea_generation_parallel", bench_ea_generation_parallel),
    ):
        if resolved == "serial":
            results[name] = {"skipped": "serial backend selected"}
            print(f"{name:>24s}: skipped (serial backend)")
            continue
        results[name] = fn(args.quick, args.workers, args.backend)
        r = results[name]
        print(
            f"{name:>24s}: serial {r['serial_s'] * 1e3:7.2f} ms   "
            f"parallel {r['parallel_s'] * 1e3:9.2f} ms   "
            f"speedup {r['speedup']:6.1f}x  ({r['workers']} workers, "
            f"{r['cpu_count']} cores)"
        )

    results["serve_traffic"] = bench_serve_traffic(args.quick)
    serve = results["serve_traffic"]
    print(
        f"{'serve_traffic':>24s}: cold {serve['cold_front_s'] * 1e3:7.2f} ms   "
        f"best {serve['best_qps']:7.1f} q/s   "
        f"p99 {serve['p99_ms_at_best']:6.2f} ms   "
        f"(curve: "
        + ", ".join(
            f"{row['clients']}c={row['qps']:.0f}q/s"
            for row in serve["saturation_curve"]
        )
        + ")"
    )

    results["serve_chaos"] = bench_serve_chaos(args.quick)
    chaos = results["serve_chaos"]
    print(
        f"{'serve_chaos':>24s}: {chaos['requests']} requests   "
        f"shed {chaos['shed_rate'] * 100:5.1f}%   "
        f"p99 {chaos['p99_ms_under_overload']:8.2f} ms   "
        f"(outcomes: "
        + ", ".join(
            f"{name}={count}"
            for name, count in sorted(chaos["outcomes"].items())
        )
        + ")"
    )

    results["tabular_replay"] = bench_tabular_replay(args.quick)
    tab = results["tabular_replay"]
    print(
        f"{'tabular_replay':>24s}: live {tab['live_s'] * 1e3:9.2f} ms   "
        f"replay {tab['replay_s'] * 1e3:9.2f} ms   "
        f"speedup {tab['speedup']:6.1f}x  "
        f"(build {tab['build_s']:.1f} s, {tab['table_rows']} rows)"
    )

    atomic_write_json(args.out, results)
    print(f"wrote {args.out}")

    if not args.quick:
        # Targets from the perf-opt issues; only enforced at full size.
        assert results["depthwise_conv_fwd_bwd"]["speedup"] >= 5.0
        assert results["latency_batch_5k"]["speedup"] >= 20.0
        # The single-core fast path must beat the pre-PR per-arch path
        # by >=3x (no-grad + batched + int8), stay bit-exact in float,
        # and pass the int8 ranking-fidelity gate.
        assert eq4["speedup"] >= 3.0
        assert eq4["max_abs_delta"] == 0.0
        assert eq4["fidelity_int8"]["passed"]
        # Replaying a search from the tabular artifact must beat the
        # live supernet-backed search by >=100x and stay bit-exact.
        assert tab["speedup"] >= 100.0
        assert tab["max_abs_delta"] == 0.0
        # Worker speedup needs actual cores: the bit-exactness deltas are
        # asserted unconditionally (inside each bench), the wall-clock
        # target only where the host can physically deliver it.
        if (
            resolved != "serial"
            and (os.cpu_count() or 1) >= 4
            and args.workers >= 4
        ):
            assert results["eq4_quality_parallel"]["speedup"] >= 2.0


if __name__ == "__main__":
    main()
