"""Hot-path micro-benchmarks: loop reference vs. vectorized rewrite.

Standalone script (not collected by pytest — ``testpaths`` excludes
``benchmarks/``); run it as::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--quick] [--out PATH]

Three hot paths are timed, each against the loop implementation the
vectorized code replaced:

1. **Depthwise/grouped convolution** — per-group Python loop
   (``grouped_conv2d_loop`` + ``grouped_conv2d_loop_backward``) vs. the
   single batched GEMM in :class:`repro.nn.layers.Conv2d`, forward and
   backward together.
2. **Batch latency prediction** — per-architecture
   :meth:`LatencyLUT.sum_ops_ms` over 5 000 sampled architectures vs.
   one :meth:`LatencyLUT.sum_ops_ms_batch` gather on the paper-scale
   ``imagenet_a`` space.
3. **Eq. 4 subspace quality** — one-at-a-time ``Objective.evaluate``
   over the N=100 sample vs. :meth:`SubspaceQuality.estimate` backed by
   ``Objective.evaluate_many`` with a batched latency predictor.

Three more entries time the multi-process evaluation engine against the
same work run serially (``--workers``, default 4): an Eq. 4 quality
estimate, one progressive-shrinking stage, and one EA search. Every
parallel entry records ``max_abs_delta`` against the serial result — the
engine's contract is bit-exactness, so the delta must be 0.0 — plus the
host ``cpu_count``, because worker speedup is meaningless without it.

Results (times, speedups, equivalence deltas) are written to
``BENCH_hotpaths.json``. Expected on the CI container: >=5x on the
depthwise conv and >=20x on batch latency prediction; >=2x on the
parallel quality estimate when the host has >=4 cores.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

import numpy as np

from repro.accuracy import AccuracySurrogate
from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.objective import Objective
from repro.core.quality import SubspaceQuality
from repro.hardware.calibration import calibrated_devices
from repro.hardware.lut import LatencyLUT
from repro.hardware.predictor import LatencyPredictor
from repro.nn.functional import grouped_conv2d_loop, grouped_conv2d_loop_backward
from repro.nn.layers.conv import Conv2d
from repro.parallel import ParallelEvaluator
from repro.runstate.atomic import atomic_write_json
from repro.space import SearchSpace, imagenet_a


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time in seconds (minimum is the least noisy)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- 1. depthwise conv forward+backward ---------------------------------------


def bench_depthwise_conv(quick: bool) -> dict:
    # Full size mirrors the deepest depthwise layers of ``imagenet_a``
    # (320 channels at 7x7), where the per-group Python loop hurts most.
    n, c, hw, k = (2, 32, 16, 3) if quick else (4, 320, 7, 3)
    repeats = 3 if quick else 5
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, c, hw, hw))
    conv = Conv2d(c, c, k, stride=1, padding=k // 2, groups=c, rng=rng)
    conv.train()
    weight = conv.weight.data
    grad_out = rng.standard_normal((n, c, hw, hw))

    def loop_path():
        out, cols = grouped_conv2d_loop(x, weight, 1, k // 2, c)
        grouped_conv2d_loop_backward(
            grad_out.reshape(n, c, -1), cols, weight, x.shape, 1, k // 2, c
        )
        return out

    def vec_path():
        out = conv.forward(x)
        conv.backward(grad_out)
        return out

    # Correctness guard before timing anything.
    out_loop, cols = grouped_conv2d_loop(x, weight, 1, k // 2, c)
    gx_loop, gw_loop = grouped_conv2d_loop_backward(
        grad_out.reshape(n, c, -1), cols, weight, x.shape, 1, k // 2, c
    )
    out_vec = conv.forward(x)
    conv.weight.grad = None
    gx_vec = conv.backward(grad_out)
    max_delta = max(
        float(np.abs(out_loop.reshape(out_vec.shape) - out_vec).max()),
        float(np.abs(gx_loop - gx_vec).max()),
        float(np.abs(gw_loop - conv.weight.grad).max()),
    )
    assert max_delta < 1e-6, f"loop/vectorized mismatch: {max_delta}"

    t_loop = _best_of(loop_path, repeats)
    t_vec = _best_of(vec_path, repeats)
    return {
        "shape": [n, c, hw, hw],
        "groups": c,
        "kernel": k,
        "loop_s": t_loop,
        "vectorized_s": t_vec,
        "speedup": t_loop / t_vec,
        "max_abs_delta": max_delta,
    }


# -- 2. batch latency prediction ----------------------------------------------


def bench_latency_batch(quick: bool) -> dict:
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["cpu"]
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)

    num_archs = 500 if quick else 5000
    repeats = 2 if quick else 5
    rng = np.random.default_rng(7)
    archs = [space.sample(rng) for _ in range(num_archs)]

    scalar = [lut.sum_ops_ms(a, space) for a in archs]
    batch = lut.sum_ops_ms_batch(archs, space)
    max_delta = float(np.abs(np.asarray(scalar) - batch).max())
    assert max_delta == 0.0, f"batch/scalar latency mismatch: {max_delta}"
    pm_delta = max(
        abs(predictor.predict(a) - p)
        for a, p in zip(archs, predictor.predict_many(archs))
    )
    assert pm_delta == 0.0, f"predict_many mismatch: {pm_delta}"

    t_loop = _best_of(lambda: [lut.sum_ops_ms(a, space) for a in archs], repeats)
    t_vec = _best_of(lambda: lut.sum_ops_ms_batch(archs, space), repeats)
    return {
        "space": "imagenet_a",
        "num_archs": num_archs,
        "loop_s": t_loop,
        "vectorized_s": t_vec,
        "speedup": t_loop / t_vec,
        "max_abs_delta": max_delta,
    }


# -- 3. Eq. 4 subspace quality ------------------------------------------------


def bench_quality(quick: bool) -> dict:
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["cpu"]
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)
    surrogate = AccuracySurrogate.for_space(space)

    scalar_obj = Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=22.5,
        beta=-0.5,
    )
    batched_obj = Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=22.5,
        beta=-0.5,
        latency_many_fn=predictor.predict_many,
    )
    num_samples = 50 if quick else 100
    repeats = 2 if quick else 5

    def run_estimate(obj):
        q = SubspaceQuality(obj, num_samples=num_samples, seed=3)
        return q.estimate(space)

    q_scalar = run_estimate(scalar_obj)
    q_batched = run_estimate(batched_obj)
    delta = abs(q_scalar - q_batched)
    assert delta == 0.0, f"quality estimate mismatch: {delta}"

    t_loop = _best_of(lambda: run_estimate(scalar_obj), repeats)
    t_vec = _best_of(lambda: run_estimate(batched_obj), repeats)
    return {
        "space": "imagenet_a",
        "num_samples": num_samples,
        "loop_s": t_loop,
        "vectorized_s": t_vec,
        "speedup": t_loop / t_vec,
        "max_abs_delta": delta,
    }


# -- 4-6. serial vs multi-process evaluation engine ---------------------------


def _engine_objective() -> tuple[SearchSpace, Objective]:
    """The batched objective both engine paths share (workers only change
    where ``evaluate_many`` runs, never what it computes)."""
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["cpu"]
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)
    surrogate = AccuracySurrogate.for_space(space)
    obj = Objective(
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        target_ms=22.5,
        beta=-0.5,
        latency_many_fn=predictor.predict_many,
    )
    return space, obj


def bench_quality_parallel(quick: bool, workers: int) -> dict:
    space, obj = _engine_objective()
    num_samples = 50 if quick else 400
    repeats = 2 if quick else 5

    def run(evaluator):
        q = SubspaceQuality(
            obj, num_samples=num_samples, seed=3, evaluator=evaluator
        )
        return q.estimate(space)

    q_serial = run(None)
    with ParallelEvaluator(obj.evaluate_many, workers=workers) as evaluator:
        q_parallel = run(evaluator)  # also warms the pool before timing
        delta = abs(q_serial - q_parallel)
        assert delta == 0.0, f"parallel quality mismatch: {delta}"
        t_serial = _best_of(lambda: run(None), repeats)
        t_parallel = _best_of(lambda: run(evaluator), repeats)
    return {
        "space": "imagenet_a",
        "num_samples": num_samples,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "max_abs_delta": delta,
    }


def bench_shrink_stage_parallel(quick: bool, workers: int) -> dict:
    # One progressive-shrinking stage: K candidate subspaces for the last
    # layer, each scored with an indexed Eq. 4 estimate (Sec. III-C).
    space, obj = _engine_objective()
    layer = len(space.candidate_ops) - 1
    subspaces = [
        space.fix_operator(layer, op) for op in space.candidate_ops[layer]
    ]
    indices = list(range(len(subspaces)))
    num_samples = 30 if quick else 150
    repeats = 2 if quick else 5

    def run(evaluator):
        q = SubspaceQuality(
            obj, num_samples=num_samples, seed=11, evaluator=evaluator
        )
        return q.estimate_many(subspaces, indices=indices)

    serial = run(None)
    with ParallelEvaluator(obj.evaluate_many, workers=workers) as evaluator:
        parallel = run(evaluator)
        delta = max(abs(a - b) for a, b in zip(serial, parallel))
        assert delta == 0.0, f"parallel shrink-stage mismatch: {delta}"
        t_serial = _best_of(lambda: run(None), repeats)
        t_parallel = _best_of(lambda: run(evaluator), repeats)
    return {
        "space": "imagenet_a",
        "num_subspaces": len(subspaces),
        "num_samples": num_samples,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "max_abs_delta": delta,
    }


def bench_ea_generation_parallel(quick: bool, workers: int) -> dict:
    # A short EA run (init population + breeding generations); every
    # evaluation batch routes through the worker pool when parallel.
    space, obj = _engine_objective()
    cfg = EvolutionConfig(
        generations=2,
        population_size=20 if quick else 100,
        num_parents=8 if quick else 25,
        seed=2,
    )
    repeats = 2 if quick else 5

    def run(evaluator):
        # Fresh search (and fresh cache) per run: a shared cache would
        # turn every repeat after the first into pure hits.
        return EvolutionarySearch(space, obj, cfg, evaluator=evaluator).run()

    serial = run(None)
    with ParallelEvaluator(obj.evaluate_many, workers=workers) as evaluator:
        parallel = run(evaluator)
        assert parallel.to_dict() == serial.to_dict(), "parallel EA mismatch"
        delta = abs(parallel.best.score - serial.best.score)
        t_serial = _best_of(lambda: run(None), repeats)
        t_parallel = _best_of(lambda: run(evaluator), repeats)
    return {
        "space": "imagenet_a",
        "generations": cfg.generations,
        "population_size": cfg.population_size,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "max_abs_delta": delta,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller problem sizes / fewer repeats (CI smoke run)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent
        / "BENCH_hotpaths.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker processes for the parallel-engine entries",
    )
    args = parser.parse_args()
    # Fail on an unwritable --out before minutes of timing, not after.
    args.out.parent.mkdir(parents=True, exist_ok=True)

    results = {"quick": args.quick, "cpu_count": os.cpu_count()}
    for name, fn in (
        ("depthwise_conv_fwd_bwd", bench_depthwise_conv),
        ("latency_batch_5k", bench_latency_batch),
        ("eq4_quality_estimate", bench_quality),
    ):
        results[name] = fn(args.quick)
        r = results[name]
        print(
            f"{name:>24s}: loop {r['loop_s'] * 1e3:9.2f} ms   "
            f"vectorized {r['vectorized_s'] * 1e3:9.2f} ms   "
            f"speedup {r['speedup']:6.1f}x"
        )

    for name, fn in (
        ("eq4_quality_parallel", bench_quality_parallel),
        ("shrink_stage_parallel", bench_shrink_stage_parallel),
        ("ea_generation_parallel", bench_ea_generation_parallel),
    ):
        results[name] = fn(args.quick, args.workers)
        r = results[name]
        print(
            f"{name:>24s}: serial {r['serial_s'] * 1e3:7.2f} ms   "
            f"parallel {r['parallel_s'] * 1e3:9.2f} ms   "
            f"speedup {r['speedup']:6.1f}x  ({r['workers']} workers, "
            f"{r['cpu_count']} cores)"
        )

    atomic_write_json(args.out, results)
    print(f"wrote {args.out}")

    if not args.quick:
        # Targets from the perf-opt issues; only enforced at full size.
        assert results["depthwise_conv_fwd_bwd"]["speedup"] >= 5.0
        assert results["latency_batch_5k"]["speedup"] >= 20.0
        # Worker speedup needs actual cores: the bit-exactness deltas are
        # asserted unconditionally (inside each bench), the wall-clock
        # target only where the host can physically deliver it.
        if (os.cpu_count() or 1) >= 4 and args.workers >= 4:
            assert results["eq4_quality_parallel"]["speedup"] >= 2.0


if __name__ == "__main__":
    main()
