"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper:
it computes the experiment, prints the same rows/series the paper
reports, asserts the *shape* criteria from DESIGN.md, and times a
representative kernel via pytest-benchmark.
"""

import numpy as np
import pytest

from repro.accuracy import AccuracySurrogate
from repro.hardware.calibration import calibrated_devices
from repro.space import SearchSpace, imagenet_a, imagenet_b

# Paper Sec. IV: latency constraints per device for the A-series models
# (9 / 24 / 34 ms). The CPU constraint is mapped onto the calibrated
# simulator's scale: the paper's 24 ms sits ~5% below its measured
# MobileNetV2-CPU latency (25.2 ms), and our simulated MobileNetV2-CPU
# is 23.3 ms, so the equivalent constraint here is ~22.5 ms.
TARGETS_A = {"gpu": 9.0, "cpu": 22.5, "edge": 34.0}
# The B-series rows of Table I correspond to looser constraints (their
# reported on-target latencies): GPU-B 12.0, CPU-B 26.4, Edge-B 52.7.
TARGETS_B = {"gpu": 12.0, "cpu": 26.5, "edge": 53.0}


@pytest.fixture(scope="session")
def devices():
    """GPU/CPU/edge simulators calibrated on the Table-I anchors."""
    return calibrated_devices()


@pytest.fixture(scope="session")
def space_a():
    return SearchSpace(imagenet_a())


@pytest.fixture(scope="session")
def space_b():
    return SearchSpace(imagenet_b())


@pytest.fixture(scope="session")
def surrogate_a(space_a):
    return AccuracySurrogate(space_a)


@pytest.fixture(scope="session")
def surrogate_b(space_b):
    return AccuracySurrogate(space_b)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
