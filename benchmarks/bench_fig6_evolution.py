"""Fig. 6 (top + bottom) — evolutionary search on the edge device.

Reproduces the paper's example: EA with the paper's hyper-parameters
(20 generations, population 50, 20 parents, crossover/mutation 0.25)
on the edge device with the 34 ms latency constraint. Reported:

* the best architecture's latency lands just about on the constraint
  (paper: 34.3 ms at T = 34 ms);
* the latency histogram of EA-evaluated architectures concentrates at
  the constraint, unlike uniform random sampling (Fig. 6 bottom).
"""

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionarySearch, Objective
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler
from repro.report.figures import ascii_histogram

_TARGET_MS = 34.0  # the paper's edge constraint


def test_fig6_evolutionary_search(benchmark, space_a, surrogate_a, devices):
    device = devices["edge"]

    def experiment():
        lut = LatencyLUT.build(space_a, device, samples_per_cell=2, seed=0)
        predictor = LatencyPredictor(lut, space_a)
        profiler = OnDeviceProfiler(device, seed=0)
        predictor.calibrate_bias(space_a, profiler, num_archs=30, seed=1)

        objective = Objective(
            accuracy_fn=surrogate_a.proxy_accuracy,
            latency_fn=predictor.predict,
            target_ms=_TARGET_MS,
            beta=-0.5,
        )
        search = EvolutionarySearch(
            space_a, objective, EvolutionConfig(seed=7)  # paper defaults
        )
        result = search.run()
        measured_best = profiler.measure_ms(space_a, result.best.arch)
        return result, measured_best, objective

    result, measured_best, objective = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print("\n=== Fig. 6: EA on edge device, T = 34 ms ===")
    print("generation |   best score | best-arch latency (ms)")
    for gen in result.generations[:: max(1, len(result.generations) // 10)]:
        best = gen.best
        print(f"{gen.index:10d} | {best.score:12.4f} | {best.latency_ms:8.2f}")
    best = result.best
    print(f"\nbest architecture: predicted {best.latency_ms:.1f} ms, "
          f"measured {measured_best:.1f} ms (target {_TARGET_MS} ms; "
          f"paper found 34.3 ms)")

    final_lats = result.generations[-1].latencies()
    rng = np.random.default_rng(3)
    random_lats = [
        objective.latency_fn(space_a.sample(rng)) for _ in range(50)
    ]
    print("\nlatency histogram, EA final population (Fig. 6 bottom):")
    print(ascii_histogram(final_lats, bins=10))
    print("\nlatency histogram, 50 uniform random samples (contrast):")
    print(ascii_histogram(random_lats, bins=10))

    # Shape criteria.
    # Best arch essentially meets the constraint (paper: 34.3 vs 34).
    assert measured_best == pytest.approx(_TARGET_MS, rel=0.06)
    # EA population concentrates at T far more than random sampling.
    ea_dev = np.mean(np.abs(np.array(final_lats) / _TARGET_MS - 1.0))
    rand_dev = np.mean(np.abs(np.array(random_lats) / _TARGET_MS - 1.0))
    assert ea_dev < rand_dev * 0.5
    # Best objective score never degrades across generations.
    bests = [g.best.score for g in result.generations]
    running = [max(bests[: i + 1]) for i in range(len(bests))]
    assert result.best.score == pytest.approx(running[-1])
