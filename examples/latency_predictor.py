"""Hardware performance modeling (paper Sec. III-A / Fig. 3).

Builds the per-operator latency LUT for each device, calibrates the
communication-overhead bias ``B`` from M = 40 measured architectures
(Eq. 3), and evaluates the predictor on a held-out set — reproducing the
paper's predicted-vs-measured comparison, including the LUT's JSON
round-trip (the artifact you would ship with a deployment toolchain).

Run:  python examples/latency_predictor.py
"""

import numpy as np

from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler
from repro.hardware.calibration import calibrated_devices
from repro.space import SearchSpace, imagenet_a


def main() -> None:
    space = SearchSpace(imagenet_a())
    devices = calibrated_devices()

    for key in ("cpu", "gpu", "edge"):
        device = devices[key]
        print(f"\n--- {device.spec.name} ---")

        lut = LatencyLUT.build(space, device, samples_per_cell=3, seed=0)
        print(f"LUT cells micro-benchmarked: {len(lut)}")

        predictor = LatencyPredictor(lut, space)
        profiler = OnDeviceProfiler(device, seed=1)
        bias = predictor.calibrate_bias(space, profiler, num_archs=40, seed=2)
        print(f"calibrated bias B = {bias:+.2f} ms (Eq. 3)")

        rng = np.random.default_rng(33)
        holdout = [space.sample(rng) for _ in range(40)]
        report = predictor.evaluate(space, profiler, holdout)
        print(f"held-out evaluation: {report}")

        # The LUT serializes to JSON, so a deployment pipeline can ship
        # it without re-profiling.
        restored = LatencyLUT.from_json(lut.to_json())
        arch = space.sample(rng)
        assert restored.sum_ops_ms(arch, space) == lut.sum_ops_ms(arch, space)
        print("LUT JSON round-trip: OK")


if __name__ == "__main__":
    main()
