"""Paper to device: search, train, bundle, quantize, verify.

The complete last mile on the demonstration task:

1. search the ``mini`` space for the edge device (predictor-driven EA);
2. train the discovered architecture from scratch;
3. export a one-file deployment bundle (weights + BN stats + arch);
4. load the bundle back, fake-quantize to INT8, and verify the accuracy
   survives — what an edge deployment actually ships.

Run:  python examples/deploy_quantized.py   (~1 minute)
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import EvolutionConfig, EvolutionarySearch, Objective
from repro.data import BatchLoader, SyntheticImageDataset
from repro.deploy import export_bundle, load_bundle, quantize_model_weights
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler, get_device
from repro.space import SearchSpace, mini
from repro.supernet import Supernet
from repro.train import StandaloneTrainer, SupernetTrainer, TrainConfig, top_k_accuracy


def main() -> None:
    dataset = SyntheticImageDataset.generate(
        num_classes=8, train_per_class=32, test_per_class=12,
        image_size=16, seed=3, noise=0.25,
    )
    space = SearchSpace(mini())
    loader = BatchLoader(dataset.train_x, dataset.train_y, batch_size=32, seed=0)

    # 1. quick search (weight-sharing accuracy + latency predictor).
    supernet = Supernet(space, seed=0)
    trainer = SupernetTrainer(supernet, loader, TrainConfig(base_lr=0.2, seed=0))
    trainer.train_epochs(space, epochs=20)

    device = get_device("edge")
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)
    profiler = OnDeviceProfiler(device, seed=0)
    predictor.calibrate_bias(space, profiler, num_archs=10, seed=1)

    rng = np.random.default_rng(0)
    target = float(np.median(
        [predictor.predict(space.sample(rng)) for _ in range(20)]
    ))
    best = EvolutionarySearch(
        space,
        Objective(
            accuracy_fn=lambda a: trainer.evaluate_arch(
                a, dataset.test_x, dataset.test_y
            ),
            latency_fn=predictor.predict,
            target_ms=target,
            beta=-0.3,
        ),
        EvolutionConfig(generations=6, population_size=12, num_parents=5, seed=3),
    ).run().best
    print(f"discovered: {best.arch}")

    # 2. train it from scratch.
    standalone = StandaloneTrainer(
        space, best.arch, loader, TrainConfig(base_lr=0.1), seed=1
    )
    standalone.train(epochs=15, warmup_epochs=2)
    fp_acc = standalone.evaluate(dataset.test_x, dataset.test_y)
    print(f"from-scratch fp64 test accuracy: {fp_acc:.3f}")

    # 3. export the deployment bundle.
    with tempfile.TemporaryDirectory() as tmp:
        path = export_bundle(standalone.model, best.arch, Path(tmp) / "hsconet")
        size_kb = path.stat().st_size / 1024
        print(f"bundle written: {path.name} ({size_kb:.0f} KiB)")

        # 4. load + quantize + verify.
        deployed = load_bundle(path)
        deployed.train()  # batch-stat BN for the small eval batch
        logits = deployed(dataset.test_x)
        loaded_acc = top_k_accuracy(logits, dataset.test_y)
        report = quantize_model_weights(deployed, bits=8)
        logits_q = deployed(dataset.test_x)
        int8_acc = top_k_accuracy(logits_q, dataset.test_y)

    print(f"bundle-loaded accuracy:  {loaded_acc:.3f}")
    print(f"quantization: {report}")
    print(f"INT8 accuracy:           {int8_acc:.3f} "
          f"(drop {fp_acc - int8_acc:+.3f})")


if __name__ == "__main__":
    main()
