"""Energy-constrained search — the paper's announced future work, working.

Searches the edge device under the usual 34 ms latency target, then
again with an energy budget 15% below what the latency-only winner
burns. The energy side uses its own LUT+bias predictor, so the search
loop needs neither a timer nor a power rail.

Run:  python examples/energy_constrained_search.py
"""

from repro.accuracy import AccuracySurrogate
from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    MultiConstraintObjective,
    Objective,
)
from repro.hardware import EnergyModel, EnergyPredictor, LatencyLUT, LatencyPredictor, OnDeviceProfiler
from repro.hardware.calibration import calibrated_devices
from repro.space import SearchSpace, imagenet_a

TARGET_MS = 34.0


def main() -> None:
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["edge"]
    surrogate = AccuracySurrogate(space)
    energy_model = EnergyModel(device)

    # Latency predictor (Eq. 2-3).
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    lat_predictor = LatencyPredictor(lut, space)
    profiler = OnDeviceProfiler(device, seed=0)
    lat_predictor.calibrate_bias(space, profiler, num_archs=25, seed=1)

    # Energy predictor (same pattern on the power rail).
    energy_predictor = EnergyPredictor(space, energy_model).build(seed=0)
    energy_predictor.calibrate_bias(num_archs=25, seed=2)

    # Latency-only search first.
    baseline = EvolutionarySearch(
        space,
        Objective(surrogate.proxy_accuracy, lat_predictor.predict,
                  TARGET_MS, beta=-0.5),
        EvolutionConfig(seed=8),
    ).run().best
    baseline_energy = energy_model.arch_energy_mj(space, baseline.arch)
    print(
        f"latency-only:       {baseline_energy:6.1f} mJ/batch, "
        f"{baseline.latency_ms:5.1f} ms, "
        f"top-1 err {surrogate.top1_error(baseline.arch):.2f}%"
    )

    # Now with an energy budget 15% tighter.
    budget = baseline_energy * 0.85
    constrained = EvolutionarySearch(
        space,
        MultiConstraintObjective(
            surrogate.proxy_accuracy,
            lat_predictor.predict,
            TARGET_MS,
            energy_fn=energy_predictor.predict,
            energy_budget_mj=budget,
            beta=-0.5,
            beta_energy=-1.5,
        ),
        EvolutionConfig(seed=8),
    ).run().best
    constrained_energy = energy_model.arch_energy_mj(space, constrained.arch)
    print(
        f"budget {budget:6.1f} mJ: {constrained_energy:6.1f} mJ/batch, "
        f"{profiler.measure_ms(space, constrained.arch):5.1f} ms, "
        f"top-1 err {surrogate.top1_error(constrained.arch):.2f}%"
    )


if __name__ == "__main__":
    main()
