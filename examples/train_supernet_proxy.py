"""The real-training path: every HSCoNAS mechanism with actual gradients.

ImageNet is not available here, so this example runs the paper's whole
loop on the scaled-down demonstration task (procedural images, the
``mini`` search space) with the from-scratch numpy NN framework:

1. train the weight-sharing supernet with uniform path sampling;
2. progressively shrink the space, tuning the supernet inside each
   shrunk space (paper Sec. III-C schedule, compressed);
3. run the EA with weight-sharing accuracy + LUT+B latency (Eq. 1);
4. train the discovered architecture from scratch (warmup + cosine),
   as the paper does for its final HSCoNets.

Run:  python examples/train_supernet_proxy.py   (~1 minute)
"""

import numpy as np

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    Objective,
    ProgressiveSpaceShrinking,
    SubspaceQuality,
)
from repro.data import BatchLoader, SyntheticImageDataset
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler, get_device
from repro.space import SearchSpace, mini
from repro.supernet import Supernet
from repro.train import StandaloneTrainer, SupernetTrainer, TrainConfig


def main() -> None:
    dataset = SyntheticImageDataset.generate(
        num_classes=8, train_per_class=32, test_per_class=12,
        image_size=16, seed=3, noise=0.25,
    )
    space = SearchSpace(mini())
    loader = BatchLoader(dataset.train_x, dataset.train_y, batch_size=32, seed=0)

    # 1. supernet training (paper: 100 epochs; here: 30).
    supernet = Supernet(space, seed=0)
    trainer = SupernetTrainer(supernet, loader, TrainConfig(base_lr=0.2, seed=0))
    losses = trainer.train_epochs(space, epochs=30)
    print(f"supernet training: loss {losses[0]:.2f} -> {losses[-1]:.2f}")

    # 2. hardware model for the edge device.
    device = get_device("edge")
    lut = LatencyLUT.build(space, device, samples_per_cell=2, seed=0)
    predictor = LatencyPredictor(lut, space)
    profiler = OnDeviceProfiler(device, seed=0)
    bias = predictor.calibrate_bias(space, profiler, num_archs=10, seed=1)
    print(f"latency predictor ready (B = {bias:+.3f} ms)")

    # 3. objective: weight-sharing accuracy + predicted latency (Eq. 1).
    rng = np.random.default_rng(0)
    target = float(np.median(
        [predictor.predict(space.sample(rng)) for _ in range(20)]
    ))
    objective = Objective(
        accuracy_fn=lambda arch: trainer.evaluate_arch(
            arch, dataset.test_x, dataset.test_y
        ),
        latency_fn=predictor.predict,
        target_ms=target,
        beta=-0.3,
    )

    # progressive shrinking with supernet tuning between stages.
    quality = SubspaceQuality(objective, num_samples=6, seed=2)
    shrinker = ProgressiveSpaceShrinking(
        quality,
        stage_layers=[(3,), (2,)],
        tune_hook=lambda sub, stage: trainer.tune_epochs(sub, 4, lr=0.05),
    )
    shrink = shrinker.run(space)
    final_space = shrink.final_space
    print(
        f"space shrinking: log10|A| {shrink.initial_log10_size:.1f} -> "
        f"{final_space.log10_size():.1f}, fixed {shrink.final_space.fixed_layers()}"
    )

    # evolutionary search inside the shrunk space.
    search = EvolutionarySearch(
        final_space, objective,
        EvolutionConfig(generations=6, population_size=12, num_parents=5, seed=3),
    )
    best = search.run().best
    print(
        f"EA best: weight-sharing acc {best.accuracy:.3f}, "
        f"predicted {best.latency_ms:.3f} ms (T = {target:.3f} ms)"
    )

    # 4. train the discovered architecture from scratch.
    standalone = StandaloneTrainer(
        space, best.arch, loader, TrainConfig(base_lr=0.1), seed=1
    )
    standalone.train(epochs=15, warmup_epochs=2)
    test_acc = standalone.evaluate(dataset.test_x, dataset.test_y)
    measured = profiler.measure_ms(space, best.arch)
    print(
        f"from-scratch training: test top-1 acc {test_acc:.3f} "
        f"(chance = {1 / dataset.num_classes:.3f}), "
        f"measured latency {measured:.3f} ms"
    )


if __name__ == "__main__":
    main()
