"""Device specialization: one HSCoNet per target device (Table I, A-series).

Searches the A-layout space once per device at the paper's constraints,
then cross-times every discovered network on every device — showing the
Table-I pattern: each net is the best choice on the hardware it was
searched for.

Run:  python examples/search_all_devices.py
"""

from repro import HSCoNAS, HSCoNASConfig, SearchSpace
from repro.baselines import get_baseline
from repro.hardware import OnDeviceProfiler
from repro.hardware.calibration import calibrated_devices
from repro.space import imagenet_a

TARGETS = {"gpu": 9.0, "cpu": 22.5, "edge": 34.0}


def main() -> None:
    space = SearchSpace(imagenet_a())
    devices = calibrated_devices()

    discovered = {}
    for key, target in TARGETS.items():
        print(f"searching for {key} (T = {target} ms)...")
        nas = HSCoNAS(space, devices[key], HSCoNASConfig(target_ms=target, seed=0))
        result = nas.run()
        discovered[key] = result
        print(
            f"  -> top-1 err {result.top1_error:.1f}%, "
            f"measured {result.measured_latency_ms:.1f} ms on {key}"
        )

    print("\ncross-device latency matrix (ms):")
    print(f"{'model':18s}" + "".join(f"{k:>8s}" for k in TARGETS))
    for key, result in discovered.items():
        profilers = {
            k: OnDeviceProfiler(devices[k], seed=7) for k in TARGETS
        }
        lats = [profilers[k].measure_ms(space, result.arch) for k in TARGETS]
        row = "".join(f"{v:8.1f}" for v in lats)
        print(f"HSCoNet-{key.upper():3s}-A    {row}")

    # Reference points: a manual design and a NAS baseline.
    for name in ("MobileNetV2 1.0x", "ProxylessNAS-GPU"):
        model = get_baseline(name)
        net = model.build()
        lats = [devices[k].run_network_ms(net.layers) for k in TARGETS]
        row = "".join(f"{v:8.1f}" for v in lats)
        print(f"{name:18s}{row}  (top-1 err {model.published.top1_error}%)")


if __name__ == "__main__":
    main()
