"""Quickstart: discover a DNN for an edge device under a 34 ms budget.

Runs the full HSCoNAS pipeline (paper Fig. 1) on the simulated Jetson
Xavier: latency-LUT micro-benchmarking, bias calibration, progressive
space shrinking, and evolutionary search — then reports the discovered
architecture with its (surrogate) ImageNet accuracy and a fresh
on-device latency measurement.

Run:  python examples/quickstart.py
"""

from repro import HSCoNAS, HSCoNASConfig, SearchSpace
from repro.hardware.calibration import calibrated_devices
from repro.space import imagenet_a


def main() -> None:
    # The search space: L=20 ShuffleNetV2-style layers, K=5 operators,
    # 10 channel factors -> |A| ~ 9.5e33 (paper Sec. II-A).
    space = SearchSpace(imagenet_a())
    print(f"search space: {space}")

    # Simulated devices, anchor-calibrated to the paper's testbed scale.
    device = calibrated_devices()["edge"]
    print(f"target device: {device.spec.name} (batch {device.spec.batch_size})")

    # The paper's edge constraint: T = 34 ms.
    config = HSCoNASConfig(target_ms=34.0, seed=0)
    nas = HSCoNAS(space, device, config)

    print("\nrunning HSCoNAS (LUT -> bias B -> shrinking -> EA)...\n")
    result = nas.run()

    print(result.summary())
    print("\nper-generation progress:")
    for record in result.search.generations[::4]:
        best = record.best
        print(
            f"  gen {record.index:2d}: score {best.score:.4f}, "
            f"latency {best.latency_ms:.1f} ms"
        )


if __name__ == "__main__":
    main()
