"""Accuracy/latency trade-off flexibility (paper Sec. II-B).

The multi-objective formulation lets platforms "trade latency for
higher accuracy, and vice versa" by moving the constraint ``T``. This
example sweeps T on the edge device, runs a (budget-reduced) search at
each point, and prints the resulting trade-off curve plus its Pareto
front.

Run:  python examples/pareto_tradeoff.py
"""

from repro.analysis import pareto_front
from repro.core import EvolutionConfig, EvolutionarySearch, HSCoNAS, HSCoNASConfig, Objective
from repro.hardware.calibration import calibrated_devices
from repro.space import SearchSpace, imagenet_a


def main() -> None:
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["edge"]

    # Build the predictor once; reuse it across all targets.
    nas = HSCoNAS(space, device, HSCoNASConfig(seed=0))
    predictor = nas.build_predictor()

    points = []
    print("sweeping latency targets on the edge device:")
    for target in (20.0, 26.0, 32.0, 38.0, 44.0):
        objective = Objective(
            accuracy_fn=nas.surrogate.proxy_accuracy,
            latency_fn=predictor.predict,
            target_ms=target,
            beta=-0.5,
        )
        search = EvolutionarySearch(
            space, objective,
            EvolutionConfig(generations=10, population_size=30,
                            num_parents=10, seed=1),
        )
        best = search.run().best
        top1 = nas.surrogate.top1_error(best.arch)
        points.append((best.latency_ms, 100.0 - top1))
        print(
            f"  T = {target:4.1f} ms -> latency {best.latency_ms:5.1f} ms, "
            f"top-1 acc {100.0 - top1:5.2f}%"
        )

    front = pareto_front(points)
    print("\nPareto front (latency ms, top-1 acc %):")
    for lat, acc in front:
        print(f"  {lat:6.1f}  {acc:6.2f}")


if __name__ == "__main__":
    main()
