"""Parallel evaluation: the same search, fanned across worker processes.

Runs progressive shrinking plus the EA twice — serially and with a
:class:`~repro.parallel.ParallelEvaluator` over worker processes — and
verifies the two runs agree bit for bit: same shrinking decisions, same
discovered architecture, same scores, same cache hit/miss accounting.
``workers`` is a pure wall-clock knob (docs/parallel.md explains why),
so the parallel run is the one to use whenever spare cores exist.

Equivalent CLI invocation:

    python -m repro search --device edge --target 34 --workers 4

Run:  python examples/parallel_search.py
"""

import os
import time

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware.calibration import calibrated_devices
from repro.space import SearchSpace, imagenet_a

TARGET_MS = 34.0
WORKERS = min(4, os.cpu_count() or 1)


def run(workers: int):
    space = SearchSpace(imagenet_a())
    device = calibrated_devices()["edge"]
    config = HSCoNASConfig(
        target_ms=TARGET_MS,
        seed=0,
        quality_samples=50,
        evolution=EvolutionConfig(generations=8, population_size=30,
                                  num_parents=12, seed=3),
        workers=workers,
    )
    start = time.perf_counter()
    result = HSCoNAS(space, device, config).run()
    return result, time.perf_counter() - start


def main() -> None:
    serial, serial_s = run(workers=0)
    parallel, parallel_s = run(workers=WORKERS)

    assert parallel.arch == serial.arch
    assert parallel.search.to_dict() == serial.search.to_dict()
    assert parallel.shrink.to_dict() == serial.shrink.to_dict()

    print(f"discovered architecture: {serial.arch}")
    print(f"shrink decisions match, EA history matches, "
          f"cache stats match: {serial.search.cache_stats}")
    print(f"serial: {serial_s:.1f} s   "
          f"{WORKERS} workers: {parallel_s:.1f} s   "
          f"(speedup x{serial_s / parallel_s:.2f} on "
          f"{os.cpu_count()} visible cores)")
    print("workers changed wall-clock only — every payload is identical")


if __name__ == "__main__":
    main()
